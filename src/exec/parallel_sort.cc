#include "exec/parallel_sort.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/timer.h"

namespace cre {

namespace {

/// Strict total order over row indices: (key, input index). Totalizing on
/// the index makes the sorted permutation unique, so every decomposition
/// of the work (one run or many, any merge partitioning) produces exactly
/// the serial stable-sort output.
template <typename T>
struct KeyLess {
  const std::vector<T>* data;
  bool ascending;

  bool operator()(std::uint32_t a, std::uint32_t b) const {
    const T& x = (*data)[a];
    const T& y = (*data)[b];
    if (ascending) {
      if (x < y) return true;
      if (y < x) return false;
    } else {
      if (y < x) return true;
      if (x < y) return false;
    }
    return a < b;
  }
};

/// One sorted run during the merge: a cursor over its remaining indices.
struct RunCursor {
  const std::uint32_t* cur = nullptr;
  const std::uint32_t* end = nullptr;
};

/// Classic k-way loser tree (Knuth 5.4.1) over sorted runs of row indices:
/// internal nodes hold match losers, slot 0 the champion, so each Pop
/// replays one leaf-to-root path (log k comparisons) instead of scanning
/// all k heads. Exhausted runs lose every match.
template <typename Less>
class LoserTree {
 public:
  LoserTree(std::vector<RunCursor> runs, const Less& less)
      : runs_(std::move(runs)), less_(less) {
    k_ = runs_.size();
    tree_.assign(std::max<std::size_t>(1, k_), kNone);
    for (std::size_t i = 0; i < k_; ++i) Seed(i);
  }

  bool Done() const {
    return k_ == 0 || Exhausted(tree_[0]);
  }

  /// Removes and returns the globally smallest remaining row index.
  std::uint32_t Pop() {
    const std::size_t w = tree_[0];
    const std::uint32_t v = *runs_[w].cur++;
    Replay(w);
    return v;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  bool Exhausted(std::size_t r) const {
    return r == kNone || runs_[r].cur == runs_[r].end;
  }

  /// True when run `a`'s head must be emitted before run `b`'s head.
  bool Beats(std::size_t a, std::size_t b) const {
    if (Exhausted(a)) return false;
    if (Exhausted(b)) return true;
    return less_(*runs_[a].cur, *runs_[b].cur);
  }

  /// Build-time insertion: climb until an empty match slot takes the
  /// climber, losing (and staying) at any occupied node that beats it.
  void Seed(std::size_t s) {
    for (std::size_t t = (s + k_) / 2; t > 0; t /= 2) {
      if (tree_[t] == kNone) {
        tree_[t] = s;
        return;
      }
      if (Beats(tree_[t], s)) std::swap(s, tree_[t]);
    }
    tree_[0] = s;
  }

  /// Steady-state adjust after the champion's run advanced: replay the
  /// matches on its path, leaving losers behind, new champion at slot 0.
  void Replay(std::size_t s) {
    for (std::size_t t = (s + k_) / 2; t > 0; t /= 2) {
      if (Beats(tree_[t], s)) std::swap(s, tree_[t]);
    }
    tree_[0] = s;
  }

  std::vector<RunCursor> runs_;
  Less less_;
  std::size_t k_ = 0;
  std::vector<std::size_t> tree_;
};

/// Gather `order` into a fresh table, fanning the per-column copies over
/// the pool (columns are independent). The gather is the tail of the sort;
/// leaving it serial would cap the measured scale-up on wide tables.
TablePtr TakeParallel(const TablePtr& input,
                      const std::vector<std::uint32_t>& order,
                      TaskRunner* pool) {
  if (pool == nullptr || pool->num_threads() <= 1 ||
      input->num_columns() <= 1) {
    return input->Take(order);
  }
  TablePtr out = Table::Make(input->schema());
  pool->ParallelFor(
      input->num_columns(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          out->column(c) = input->column(c).Take(order);
        }
      },
      /*min_chunk=*/1);
  return out;
}

/// Runs below this size are not worth a scheduling round trip.
constexpr std::size_t kMinRunRows = 4096;
/// Splitter sample points taken per run (oversampling smooths skew).
constexpr std::size_t kSplitterOversample = 8;

template <typename T>
Result<TablePtr> SortTyped(const TablePtr& input, const std::vector<T>& keys,
                           bool ascending, TaskRunner* pool,
                           std::size_t limit_hint,
                           SortPhaseTimings* timings) {
  const std::size_t n = input->num_rows();
  const KeyLess<T> less{&keys, ascending};
  const std::size_t threads = pool == nullptr ? 1 : pool->num_threads();
  // Rows the caller actually needs (Sort under LIMIT = top-k).
  const std::size_t wanted = limit_hint == 0 ? n : std::min(limit_hint, n);

  std::size_t num_runs = 1;
  if (threads > 1 && n >= 2 * kMinRunRows) {
    num_runs = std::min(threads * 2, n / kMinRunRows);
  }

  if (num_runs <= 1) {
    Timer timer;
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    if (wanted < n) {
      std::partial_sort(order.begin(), order.begin() + wanted, order.end(),
                        less);
      order.resize(wanted);
    } else {
      // `less` is total, so std::sort yields the stable-sort permutation.
      std::sort(order.begin(), order.end(), less);
    }
    if (timings != nullptr) {
      timings->local_sort_seconds = timer.Seconds();
      timings->runs = 1;
      timings->merge_partitions = 0;
    }
    return input->Take(order);
  }

  // ---- phase 1: sort per-run row-index arrays in parallel ----
  Timer local_timer;
  const std::size_t run_len = (n + num_runs - 1) / num_runs;
  std::vector<std::vector<std::uint32_t>> runs(num_runs);
  pool->ParallelFor(
      num_runs,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const std::size_t lo = r * run_len;
          const std::size_t hi = std::min(n, lo + run_len);
          auto& run = runs[r];
          run.resize(hi - lo);
          std::iota(run.begin(), run.end(),
                    static_cast<std::uint32_t>(lo));
          if (wanted < run.size()) {
            // Only a run's first `wanted` rows can reach the global top-k.
            std::partial_sort(run.begin(), run.begin() + wanted, run.end(),
                              less);
            run.resize(wanted);
          } else {
            std::sort(run.begin(), run.end(), less);
          }
        }
      },
      /*min_chunk=*/1);
  const double local_seconds = local_timer.Seconds();

  // ---- phase 2: k-way merge of the sorted runs ----
  Timer merge_timer;
  std::vector<std::uint32_t> order;
  std::size_t merge_partitions = 1;
  std::size_t total = 0;
  for (const auto& run : runs) total += run.size();

  if (wanted < n || total < 2 * kMinRunRows) {
    // Top-k (or tiny) output: one loser-tree pass emitting `wanted` rows
    // is cheaper than range partitioning.
    std::vector<RunCursor> cursors;
    cursors.reserve(num_runs);
    for (const auto& run : runs) {
      cursors.push_back({run.data(), run.data() + run.size()});
    }
    LoserTree<KeyLess<T>> tree(std::move(cursors), less);
    const std::size_t out_n = std::min(wanted, total);
    order.reserve(out_n);
    while (order.size() < out_n && !tree.Done()) order.push_back(tree.Pop());
  } else {
    // Full output: range-partition the merge on splitters sampled from
    // the sorted runs, then merge each key range independently into its
    // precomputed output slice. The total order makes every boundary
    // exact, so concatenating partitions reproduces the global order.
    const std::size_t parts =
        std::max<std::size_t>(2, std::min(threads * 2, num_runs * 2));
    std::vector<std::uint32_t> sample;
    sample.reserve(num_runs * kSplitterOversample);
    for (const auto& run : runs) {
      for (std::size_t j = 0; j < kSplitterOversample; ++j) {
        if (run.empty()) break;
        sample.push_back(run[j * run.size() / kSplitterOversample]);
      }
    }
    std::sort(sample.begin(), sample.end(), less);
    std::vector<std::uint32_t> splitters;
    splitters.reserve(parts - 1);
    for (std::size_t p = 1; p < parts; ++p) {
      splitters.push_back(sample[p * sample.size() / parts]);
    }

    // bounds[r][p] = first element of run r belonging to partition >= p.
    std::vector<std::vector<std::size_t>> bounds(
        num_runs, std::vector<std::size_t>(parts + 1));
    for (std::size_t r = 0; r < num_runs; ++r) {
      bounds[r][0] = 0;
      bounds[r][parts] = runs[r].size();
      for (std::size_t p = 1; p < parts; ++p) {
        bounds[r][p] = static_cast<std::size_t>(
            std::lower_bound(runs[r].begin(), runs[r].end(),
                             splitters[p - 1], less) -
            runs[r].begin());
      }
    }
    std::vector<std::size_t> offsets(parts + 1, 0);
    for (std::size_t p = 0; p < parts; ++p) {
      std::size_t size = 0;
      for (std::size_t r = 0; r < num_runs; ++r) {
        size += bounds[r][p + 1] - bounds[r][p];
      }
      offsets[p + 1] = offsets[p] + size;
    }

    // Each partition merges its key range and immediately scatters its
    // slice of every column into the pre-sized output table — the rows
    // are cache-hot from the merge, and the separate gather pass (one
    // more full sweep over `order` plus a second scheduling round) that
    // used to follow the merge disappears. Partitions own disjoint
    // [offsets[p], offsets[p+1]) output ranges, so the writes never
    // alias (bools are distinct bytes, strings distinct objects).
    TablePtr scattered = Table::Make(input->schema());
    for (std::size_t c = 0; c < input->num_columns(); ++c) {
      scattered->column(c).ResizeDefault(total);
    }
    order.resize(total);
    pool->ParallelFor(
        parts,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) {
            std::vector<RunCursor> cursors;
            cursors.reserve(num_runs);
            for (std::size_t r = 0; r < num_runs; ++r) {
              const auto* base = runs[r].data();
              if (bounds[r][p] < bounds[r][p + 1]) {
                cursors.push_back(
                    {base + bounds[r][p], base + bounds[r][p + 1]});
              }
            }
            LoserTree<KeyLess<T>> tree(std::move(cursors), less);
            std::uint32_t* out = order.data() + offsets[p];
            while (!tree.Done()) *out++ = tree.Pop();
            const std::size_t part_rows = offsets[p + 1] - offsets[p];
            for (std::size_t c = 0; c < input->num_columns(); ++c) {
              scattered->column(c).ScatterFrom(input->column(c),
                                               order.data() + offsets[p],
                                               part_rows, offsets[p]);
            }
          }
        },
        /*min_chunk=*/1);
    if (timings != nullptr) {
      timings->local_sort_seconds = local_seconds;
      timings->merge_seconds = merge_timer.Seconds();
      timings->runs = num_runs;
      timings->merge_partitions = parts;
    }
    return scattered;
  }

  TablePtr result = TakeParallel(input, order, pool);
  if (timings != nullptr) {
    timings->local_sort_seconds = local_seconds;
    timings->merge_seconds = merge_timer.Seconds();
    timings->runs = num_runs;
    timings->merge_partitions = merge_partitions;
  }
  return result;
}

}  // namespace

namespace {

/// Releases a raw-pointer budget charge when the sort call unwinds. The
/// budget outlives the call (the driver's QueryContext holds it), so a
/// raw pointer is safe for this function-scoped charge.
struct SortChargeGuard {
  QueryBudget* budget = nullptr;
  std::size_t bytes = 0;
  ~SortChargeGuard() {
    if (budget != nullptr && bytes != 0) budget->Release(bytes);
  }
};

}  // namespace

Result<TablePtr> SortTable(const TablePtr& input, const std::string& key,
                           bool ascending, TaskRunner* pool,
                           std::size_t limit_hint, SortPhaseTimings* timings,
                           QueryBudget* budget,
                           FootprintCalibrator* calibrator) {
  CRE_ASSIGN_OR_RETURN(std::size_t key_idx, input->schema().RequireField(key));
  const std::size_t rows = input->num_rows();
  SortChargeGuard charge;
  if (budget != nullptr) {
    // Transient sort state: gathered output (~input bytes) plus two
    // row-index arrays (runs + merged permutation). A calibrator swaps in
    // the observed bytes/row of past sorts once it has seen enough.
    std::size_t bytes =
        input->MemoryBytes() + rows * 2 * sizeof(std::uint32_t);
    if (calibrator != nullptr) {
      bytes = calibrator->EstimateBytes(FootprintSite::kSortRuns, rows, bytes);
    }
    CRE_RETURN_NOT_OK(budget->Charge(bytes, "sort runs"));
    charge.budget = budget;
    charge.bytes = bytes;
  }
  const Column& col = input->column(key_idx);
  Result<TablePtr> result = Status::TypeError("cannot sort on vector column");
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kDate:
      result = SortTyped(input, col.i64(), ascending, pool, limit_hint,
                         timings);
      break;
    case DataType::kFloat64:
      result = SortTyped(input, col.f64(), ascending, pool, limit_hint,
                         timings);
      break;
    case DataType::kString:
      result = SortTyped(input, col.strings(), ascending, pool, limit_hint,
                         timings);
      break;
    case DataType::kBool:
      result = SortTyped(input, col.bools(), ascending, pool, limit_hint,
                         timings);
      break;
    default:
      return result.status();
  }
  if (result.ok() && calibrator != nullptr && rows > 0) {
    // Actual transient footprint: the gathered output plus the row-index
    // arrays the runs and merge used.
    calibrator->Observe(FootprintSite::kSortRuns, rows,
                        result.ValueUnsafe()->MemoryBytes() +
                            rows * 2 * sizeof(std::uint32_t));
  }
  return result;
}

}  // namespace cre
