#include "exec/stats.h"

#include <sstream>

#include "core/timer.h"

namespace cre {

Status InstrumentedOperator::Open() {
  Timer t;
  Status s = child_->Open();
  stats_->AddOpenSeconds(t.Seconds());
  return s;
}

Result<TablePtr> InstrumentedOperator::Next() {
  Timer t;
  auto r = child_->Next();
  const double seconds = t.Seconds();
  if (r.ok() && r.ValueUnsafe() != nullptr) {
    stats_->AddBatch(r.ValueUnsafe()->num_rows(), seconds);
  } else {
    AtomicAddDouble(stats_->next_seconds, seconds);
  }
  return r;
}

std::string StatsCollector::ToString() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-52s %10s %8s %12s %12s\n", "operator",
                "rows", "batches", "open [ms]", "next [ms]");
  os << line;
  for (const auto& s : slots_) {
    std::snprintf(line, sizeof(line), "%-52s %10zu %8zu %12.3f %12.3f\n",
                  s->name.substr(0, 52).c_str(),
                  s->rows.load(std::memory_order_relaxed),
                  s->batches.load(std::memory_order_relaxed),
                  s->open_seconds.load(std::memory_order_relaxed) * 1e3,
                  s->next_seconds.load(std::memory_order_relaxed) * 1e3);
    os << line;
  }
  return os.str();
}

}  // namespace cre
