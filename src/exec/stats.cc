#include "exec/stats.h"

#include <sstream>

#include "core/timer.h"

namespace cre {

Status InstrumentedOperator::Open() {
  Timer t;
  Status s = child_->Open();
  stats_->open_seconds += t.Seconds();
  return s;
}

Result<TablePtr> InstrumentedOperator::Next() {
  Timer t;
  auto r = child_->Next();
  stats_->next_seconds += t.Seconds();
  if (r.ok() && r.ValueUnsafe() != nullptr) {
    ++stats_->batches;
    stats_->rows += r.ValueUnsafe()->num_rows();
  }
  return r;
}

std::string StatsCollector::ToString() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-52s %10s %8s %12s %12s\n", "operator",
                "rows", "batches", "open [ms]", "next [ms]");
  os << line;
  for (const auto& s : slots_) {
    std::snprintf(line, sizeof(line), "%-52s %10zu %8zu %12.3f %12.3f\n",
                  s->name.substr(0, 52).c_str(), s->rows, s->batches,
                  s->open_seconds * 1e3, s->next_seconds * 1e3);
    os << line;
  }
  return os.str();
}

}  // namespace cre
