#include "exec/aggregate.h"

#include <cmath>
#include <limits>

#include "core/hash.h"

namespace cre {

namespace {

/// Serializes one row's group-key cells into a collision-free map key.
std::string MakeGroupKey(const Table& batch,
                         const std::vector<std::size_t>& key_cols,
                         std::size_t row) {
  std::string key;
  for (const std::size_t c : key_cols) {
    const Value v = batch.GetValue(row, c);
    key += v.ToString();
    key.push_back('\x1f');  // unit separator avoids value-concat collisions
  }
  return key;
}

}  // namespace

Status GroupedAggregationState::Init(const Schema& input,
                                     std::vector<std::string> group_keys,
                                     std::vector<AggSpec> aggs) {
  group_keys_ = std::move(group_keys);
  aggs_ = std::move(aggs);
  key_cols_.clear();
  agg_cols_.assign(aggs_.size(), -1);
  schema_ = Schema();
  groups_.clear();

  for (const auto& k : group_keys_) {
    CRE_ASSIGN_OR_RETURN(std::size_t idx, input.RequireField(k));
    key_cols_.push_back(idx);
    schema_.AddField(input.field(idx));
  }
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    if (aggs_[a].kind != AggKind::kCount) {
      CRE_ASSIGN_OR_RETURN(std::size_t idx,
                           input.RequireField(aggs_[a].column));
      agg_cols_[a] = static_cast<int>(idx);
    }
    const DataType out_type = aggs_[a].kind == AggKind::kCount
                                  ? DataType::kInt64
                                  : DataType::kFloat64;
    schema_.AddField({aggs_[a].output_name, out_type, 0});
  }
  return Status::OK();
}

void GroupedAggregationState::InitAccumulators(GroupState* state) const {
  state->acc.resize(aggs_.size(), 0.0);
  state->counts.resize(aggs_.size(), 0);
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    if (aggs_[a].kind == AggKind::kMin) {
      state->acc[a] = std::numeric_limits<double>::max();
    } else if (aggs_[a].kind == AggKind::kMax) {
      state->acc[a] = std::numeric_limits<double>::lowest();
    }
  }
}

std::string GroupedAggregationState::GroupKey(const Table& batch,
                                              std::size_t row) const {
  return MakeGroupKey(batch, key_cols_, row);
}

Status GroupedAggregationState::ConsumeRow(const Table& batch,
                                           std::size_t row,
                                           std::string&& key) {
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    GroupState state;
    state.key_values.reserve(key_cols_.size());
    for (const std::size_t c : key_cols_) {
      state.key_values.push_back(batch.GetValue(row, c));
    }
    InitAccumulators(&state);
    it = groups_.emplace(std::move(key), std::move(state)).first;
  }
  GroupState& g = it->second;
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    ++g.counts[a];
    if (aggs_[a].kind == AggKind::kCount) continue;
    const double v = batch.GetValue(row, agg_cols_[a]).AsNumeric();
    switch (aggs_[a].kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        g.acc[a] += v;
        break;
      case AggKind::kMin:
        g.acc[a] = std::min(g.acc[a], v);
        break;
      case AggKind::kMax:
        g.acc[a] = std::max(g.acc[a], v);
        break;
      case AggKind::kCount:
        break;
    }
  }
  return Status::OK();
}

Status GroupedAggregationState::Consume(const Table& batch) {
  const std::size_t n = batch.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    CRE_RETURN_NOT_OK(ConsumeRow(batch, r, MakeGroupKey(batch, key_cols_, r)));
  }
  return Status::OK();
}

void GroupedAggregationState::Merge(GroupedAggregationState&& other) {
  for (auto& [key, og] : other.groups_) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      groups_.emplace(key, std::move(og));
      continue;
    }
    GroupState& g = it->second;
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      g.counts[a] += og.counts[a];
      switch (aggs_[a].kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          g.acc[a] += og.acc[a];
          break;
        case AggKind::kMin:
          g.acc[a] = std::min(g.acc[a], og.acc[a]);
          break;
        case AggKind::kMax:
          g.acc[a] = std::max(g.acc[a], og.acc[a]);
          break;
        case AggKind::kCount:
          break;
      }
    }
  }
  other.groups_.clear();
}

Result<TablePtr> GroupedAggregationState::Finalize() {
  // SQL semantics: a global aggregate (no grouping keys) over empty input
  // yields exactly one row of identity values (COUNT = 0, sums = 0).
  if (groups_.empty() && group_keys_.empty()) {
    GroupState zero;
    InitAccumulators(&zero);
    // Min/max identities would be +/-inf; report 0 like the seed engine.
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].kind == AggKind::kMin || aggs_[a].kind == AggKind::kMax) {
        zero.acc[a] = 0.0;
      }
    }
    groups_.emplace("", std::move(zero));
  }

  auto out = Table::Make(schema_);
  for (const auto& [key, g] : groups_) {
    std::vector<Value> row = g.key_values;
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].kind) {
        case AggKind::kCount:
          row.push_back(Value(g.counts[a]));
          break;
        case AggKind::kAvg:
          row.push_back(Value(g.counts[a] ? g.acc[a] / g.counts[a] : 0.0));
          break;
        default:
          row.push_back(Value(g.acc[a]));
          break;
      }
    }
    CRE_RETURN_NOT_OK(out->AppendRow(row));
  }
  return out;
}

Status RadixAggregationState::Init(const Schema& input,
                                   const std::vector<std::string>& group_keys,
                                   const std::vector<AggSpec>& aggs,
                                   std::size_t num_partitions) {
  std::size_t p = 2;
  while (p < num_partitions) p <<= 1;
  partitions_.clear();
  partitions_.resize(p);
  mask_ = p - 1;
  for (auto& partition : partitions_) {
    CRE_RETURN_NOT_OK(partition.Init(input, group_keys, aggs));
  }
  return Status::OK();
}

std::size_t RadixAggregationState::PartitionOf(const std::string& key,
                                               std::size_t mask) {
  // Mix the full FNV hash so the masked bits are well distributed even
  // for short integer-ish keys; the unordered_map inside each partition
  // hashes independently, so radix bits and bucket bits don't collide.
  return static_cast<std::size_t>(MixHash(HashString(key))) & mask;
}

Status RadixAggregationState::Consume(const Table& batch) {
  const std::size_t n = batch.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    std::string key = partitions_.front().GroupKey(batch, r);
    const std::size_t p = PartitionOf(key, mask_);
    CRE_RETURN_NOT_OK(partitions_[p].ConsumeRow(batch, r, std::move(key)));
  }
  return Status::OK();
}

std::size_t GroupedAggregationState::MemoryBytes() const {
  // libstdc++ node = key string header + hash + next pointer (~56 bytes
  // with the GroupState inline); heap spills for the key and the three
  // per-group vectors come on top.
  std::size_t bytes = groups_.bucket_count() * sizeof(void*);
  for (const auto& kv : groups_) {
    const GroupState& g = kv.second;
    bytes += 56 + sizeof(GroupState);
    if (kv.first.capacity() > 15) bytes += kv.first.capacity();
    bytes += g.key_values.capacity() * sizeof(Value);
    bytes += g.acc.capacity() * sizeof(double);
    bytes += g.counts.capacity() * sizeof(std::int64_t);
  }
  return bytes;
}

AggregateOperator::AggregateOperator(OperatorPtr child,
                                     std::vector<std::string> group_keys,
                                     std::vector<AggSpec> aggs,
                                     QueryBudgetPtr budget,
                                     FootprintCalibrator* calibrator)
    : child_(std::move(child)),
      group_keys_(std::move(group_keys)),
      aggs_(std::move(aggs)),
      budget_(std::move(budget)),
      calibrator_(calibrator) {}

AggregateOperator::~AggregateOperator() {
  if (budget_ != nullptr && charged_ != 0) budget_->Release(charged_);
}

Status AggregateOperator::Open() {
  CRE_RETURN_NOT_OK(child_->Open());
  return state_.Init(child_->output_schema(), group_keys_, aggs_);
}

Result<TablePtr> AggregateOperator::Next() {
  if (done_) return TablePtr(nullptr);
  for (;;) {
    CRE_ASSIGN_OR_RETURN(TablePtr batch, child_->Next());
    if (batch == nullptr) break;
    CRE_RETURN_NOT_OK(state_.Consume(*batch));
    if (budget_ != nullptr) {
      // Re-charge to the estimated state size at the current group count;
      // only growth is charged (group counts never shrink).
      const std::size_t groups = state_.num_groups();
      std::size_t est = groups * 64;
      if (calibrator_ != nullptr) {
        est = calibrator_->EstimateBytes(FootprintSite::kAggState, groups, est);
      }
      if (est > charged_) {
        CRE_RETURN_NOT_OK(budget_->Charge(est - charged_, "aggregate state"));
        charged_ = est;
      }
    }
  }
  done_ = true;
  if (calibrator_ != nullptr && state_.num_groups() > 0) {
    calibrator_->Observe(FootprintSite::kAggState, state_.num_groups(),
                         state_.MemoryBytes());
  }
  return state_.Finalize();
}

}  // namespace cre
