#include "exec/aggregate.h"

#include <cmath>
#include <limits>

namespace cre {

namespace {

/// Serializes one row's group-key cells into a collision-free map key.
std::string MakeGroupKey(const Table& batch,
                         const std::vector<std::size_t>& key_cols,
                         std::size_t row) {
  std::string key;
  for (const std::size_t c : key_cols) {
    const Value v = batch.GetValue(row, c);
    key += v.ToString();
    key.push_back('\x1f');  // unit separator avoids value-concat collisions
  }
  return key;
}

}  // namespace

AggregateOperator::AggregateOperator(OperatorPtr child,
                                     std::vector<std::string> group_keys,
                                     std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_keys_(std::move(group_keys)),
      aggs_(std::move(aggs)) {}

Status AggregateOperator::Open() {
  CRE_RETURN_NOT_OK(child_->Open());
  const Schema& in = child_->output_schema();
  for (const auto& k : group_keys_) {
    CRE_ASSIGN_OR_RETURN(std::size_t idx, in.RequireField(k));
    schema_.AddField(in.field(idx));
  }
  for (const auto& a : aggs_) {
    if (a.kind != AggKind::kCount) {
      CRE_RETURN_NOT_OK(in.RequireField(a.column).status());
    }
    const DataType out_type =
        a.kind == AggKind::kCount ? DataType::kInt64 : DataType::kFloat64;
    schema_.AddField({a.output_name, out_type, 0});
  }
  return Status::OK();
}

Status AggregateOperator::Consume(const Table& batch) {
  const Schema& in = batch.schema();
  std::vector<std::size_t> key_cols;
  for (const auto& k : group_keys_) {
    CRE_ASSIGN_OR_RETURN(std::size_t idx, in.RequireField(k));
    key_cols.push_back(idx);
  }
  std::vector<int> agg_cols(aggs_.size(), -1);
  for (std::size_t a = 0; a < aggs_.size(); ++a) {
    if (aggs_[a].kind != AggKind::kCount) {
      CRE_ASSIGN_OR_RETURN(std::size_t idx, in.RequireField(aggs_[a].column));
      agg_cols[a] = static_cast<int>(idx);
    }
  }

  const std::size_t n = batch.num_rows();
  for (std::size_t r = 0; r < n; ++r) {
    std::string key = MakeGroupKey(batch, key_cols, r);
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      GroupState state;
      state.key_values.reserve(key_cols.size());
      for (const std::size_t c : key_cols) {
        state.key_values.push_back(batch.GetValue(r, c));
      }
      state.acc.resize(aggs_.size(), 0.0);
      state.counts.resize(aggs_.size(), 0);
      for (std::size_t a = 0; a < aggs_.size(); ++a) {
        if (aggs_[a].kind == AggKind::kMin) {
          state.acc[a] = std::numeric_limits<double>::max();
        } else if (aggs_[a].kind == AggKind::kMax) {
          state.acc[a] = std::numeric_limits<double>::lowest();
        }
      }
      it = groups_.emplace(std::move(key), std::move(state)).first;
    }
    GroupState& g = it->second;
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      ++g.counts[a];
      if (aggs_[a].kind == AggKind::kCount) continue;
      const double v = batch.GetValue(r, agg_cols[a]).AsNumeric();
      switch (aggs_[a].kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          g.acc[a] += v;
          break;
        case AggKind::kMin:
          g.acc[a] = std::min(g.acc[a], v);
          break;
        case AggKind::kMax:
          g.acc[a] = std::max(g.acc[a], v);
          break;
        case AggKind::kCount:
          break;
      }
    }
  }
  return Status::OK();
}

Result<TablePtr> AggregateOperator::Next() {
  if (done_) return TablePtr(nullptr);
  for (;;) {
    CRE_ASSIGN_OR_RETURN(TablePtr batch, child_->Next());
    if (batch == nullptr) break;
    CRE_RETURN_NOT_OK(Consume(*batch));
  }
  done_ = true;

  // SQL semantics: a global aggregate (no grouping keys) over empty input
  // yields exactly one row of identity values (COUNT = 0, sums = 0).
  if (groups_.empty() && group_keys_.empty()) {
    GroupState zero;
    zero.acc.resize(aggs_.size(), 0.0);
    zero.counts.resize(aggs_.size(), 0);
    groups_.emplace("", std::move(zero));
  }

  auto out = Table::Make(schema_);
  for (const auto& [key, g] : groups_) {
    std::vector<Value> row = g.key_values;
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].kind) {
        case AggKind::kCount:
          row.push_back(Value(g.counts[a]));
          break;
        case AggKind::kAvg:
          row.push_back(Value(g.counts[a] ? g.acc[a] / g.counts[a] : 0.0));
          break;
        default:
          row.push_back(Value(g.acc[a]));
          break;
      }
    }
    CRE_RETURN_NOT_OK(out->AppendRow(row));
  }
  return out;
}

}  // namespace cre
