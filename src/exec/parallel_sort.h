#ifndef CRE_EXEC_PARALLEL_SORT_H_
#define CRE_EXEC_PARALLEL_SORT_H_

#include <string>

#include "core/resource_governor.h"
#include "core/result.h"
#include "core/thread_pool.h"
#include "exec/footprint.h"
#include "storage/table.h"

namespace cre {

/// Wall-clock breakdown of one SortTable call, split at the phase boundary
/// the parallel algorithm introduces: sorting the per-run row-index arrays
/// (embarrassingly parallel) vs merging the sorted runs (parallelized by
/// range-partitioning on sampled splitters, but with a serial residue of
/// sampling, boundary search, and the final gather).
struct SortPhaseTimings {
  double local_sort_seconds = 0;
  double merge_seconds = 0;
  std::size_t runs = 0;              ///< sorted runs produced (1 = serial)
  std::size_t merge_partitions = 0;  ///< range partitions merged in parallel
};

/// Sorts `input` by the single key column `key`. The produced row order is
/// the stable sort order: equal keys keep their input order, for every
/// thread count — the comparator totalizes (key, input row index), so the
/// serial and parallel algorithms compute the same unique permutation.
///
/// With a multi-thread `pool` the input splits into per-worker runs that
/// sort locally in parallel; the sorted runs then feed a k-way loser-tree
/// merge that is itself parallelized by range-partitioning on splitters
/// sampled from the runs (each partition merges independently into its
/// pre-computed output slice). With a null/single-thread pool the whole
/// table is one run (classic serial sort).
///
/// `limit_hint` > 0 means only the first `limit_hint` output rows are
/// needed (Sort feeding a LIMIT): each run partial-sorts to the hint and
/// the merge stops after emitting that many rows, turning O(n log n) into
/// O(n log k) top-k work. The returned table then holds at most
/// `limit_hint` rows.
///
/// With a non-null `budget` the transient sort state (row-index runs plus
/// the gathered output, ~input bytes + 2 indices/row) is charged for the
/// duration of the call; a breach returns kResourceExhausted before any
/// run is sorted. A non-null `calibrator` replaces that static estimate
/// with the observed bytes/row of past sorts and folds this sort's actual
/// footprint back in.
Result<TablePtr> SortTable(const TablePtr& input, const std::string& key,
                           bool ascending, TaskRunner* pool,
                           std::size_t limit_hint = 0,
                           SortPhaseTimings* timings = nullptr,
                           QueryBudget* budget = nullptr,
                           FootprintCalibrator* calibrator = nullptr);

}  // namespace cre

#endif  // CRE_EXEC_PARALLEL_SORT_H_
