#ifndef CRE_EXEC_SORT_LIMIT_H_
#define CRE_EXEC_SORT_LIMIT_H_

#include <string>
#include <utility>

#include "exec/operator.h"

namespace cre {

/// Full-materialize sort on a single key column (ascending or descending).
class SortOperator : public PhysicalOperator {
 public:
  SortOperator(OperatorPtr child, std::string key, bool ascending = true)
      : child_(std::move(child)), key_(std::move(key)), ascending_(ascending) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override { return child_->Open(); }
  Result<TablePtr> Next() override;
  std::string name() const override { return "Sort(" + key_ + ")"; }

 private:
  OperatorPtr child_;
  std::string key_;
  bool ascending_;
  bool done_ = false;
};

/// Emits at most `limit` rows from the child.
class LimitOperator : public PhysicalOperator {
 public:
  LimitOperator(OperatorPtr child, std::size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<TablePtr> Next() override;
  std::string name() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }

 private:
  OperatorPtr child_;
  std::size_t limit_;
  std::size_t emitted_ = 0;
};

}  // namespace cre

#endif  // CRE_EXEC_SORT_LIMIT_H_
