#ifndef CRE_EXEC_SORT_LIMIT_H_
#define CRE_EXEC_SORT_LIMIT_H_

#include <string>
#include <utility>

#include "core/resource_governor.h"
#include "core/thread_pool.h"
#include "exec/footprint.h"
#include "exec/operator.h"

namespace cre {

/// Full-materialize sort on a single key column (ascending or descending).
/// Sorting delegates to SortTable (exec/parallel_sort.h): with a pool the
/// materialized input splits into per-run local sorts feeding a
/// range-partitioned k-way loser-tree merge; without one it is the classic
/// serial sort. Either way the output permutation is the stable-sort
/// order. A non-zero `limit_hint` (Sort feeding a LIMIT) switches to
/// top-k: only the first `limit_hint` rows are produced. With a non-null
/// `budget` the transient sort state is charged against the governor for
/// the duration of the sort (calibrated by `calibrator` when given), so
/// serial-path sorts are accounted the same way driver-level ones are.
class SortOperator : public PhysicalOperator {
 public:
  SortOperator(OperatorPtr child, std::string key, bool ascending = true,
               TaskRunner* pool = nullptr, std::size_t limit_hint = 0,
               QueryBudgetPtr budget = nullptr,
               FootprintCalibrator* calibrator = nullptr)
      : child_(std::move(child)),
        key_(std::move(key)),
        ascending_(ascending),
        pool_(pool),
        limit_hint_(limit_hint),
        budget_(std::move(budget)),
        calibrator_(calibrator) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override { return child_->Open(); }
  Result<TablePtr> Next() override;
  std::string name() const override { return "Sort(" + key_ + ")"; }

 private:
  OperatorPtr child_;
  std::string key_;
  bool ascending_;
  TaskRunner* pool_;
  std::size_t limit_hint_;
  QueryBudgetPtr budget_;
  FootprintCalibrator* calibrator_;
  bool done_ = false;
};

/// Emits at most `limit` rows from the child.
class LimitOperator : public PhysicalOperator {
 public:
  LimitOperator(OperatorPtr child, std::size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<TablePtr> Next() override;
  std::string name() const override {
    return "Limit(" + std::to_string(limit_) + ")";
  }

 private:
  OperatorPtr child_;
  std::size_t limit_;
  std::size_t emitted_ = 0;
};

}  // namespace cre

#endif  // CRE_EXEC_SORT_LIMIT_H_
