#include "index/index_manager.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "vecsim/hnsw_index.h"
#include "vecsim/ivf_index.h"
#include "vecsim/lsh_index.h"

namespace cre {

namespace {

/// Serves hits in base-table row ids from an index built over the
/// column's *distinct* values. Each distinct string embeds (and indexes)
/// once regardless of how often it repeats — on Zipfian corpora this
/// shrinks the index by the duplication factor — and the inner graph/
/// partition structures never degenerate into duplicate cliques. Hits
/// expand through the postings lists back to every base row holding the
/// value, so callers see ids 0..num_rows as if the index covered the
/// full column.
class DistinctExpandedIndex : public VectorIndex {
 public:
  DistinctExpandedIndex(std::unique_ptr<VectorIndex> inner,
                        std::vector<std::vector<std::uint32_t>> postings,
                        std::size_t num_rows)
      : inner_(std::move(inner)),
        postings_(std::move(postings)),
        rows_(num_rows) {}

  Status Build(const float*, std::size_t, std::size_t) override {
    return Status::Internal(
        "DistinctExpandedIndex is constructed over a prebuilt inner index");
  }

  void RangeSearch(const float* query, float threshold,
                   std::vector<ScoredId>* out) const override {
    std::vector<ScoredId> hits;
    inner_->RangeSearch(query, threshold, &hits);
    for (const ScoredId& h : hits) {
      for (const std::uint32_t row : postings_[h.id]) {
        out->push_back({row, h.score});
      }
    }
  }

  std::vector<ScoredId> TopK(const float* query,
                             std::size_t k) const override {
    // k distinct hits expand to >= k rows (every value has >= 1 row), so
    // asking the inner index for k is always sufficient.
    std::vector<ScoredId> out;
    out.reserve(k);
    for (const ScoredId& h : inner_->TopK(query, k)) {
      for (const std::uint32_t row : postings_[h.id]) {
        if (out.size() >= k) return out;
        out.push_back({row, h.score});
      }
    }
    return out;
  }

  std::size_t size() const override { return rows_; }
  std::size_t dim() const override { return inner_->dim(); }
  std::string name() const override { return inner_->name(); }
  std::size_t MemoryBytes() const override {
    std::size_t bytes = inner_->MemoryBytes();
    for (const auto& p : postings_) {
      bytes += p.size() * sizeof(std::uint32_t);
    }
    return bytes;
  }

 private:
  std::unique_ptr<VectorIndex> inner_;
  std::vector<std::vector<std::uint32_t>> postings_;
  std::size_t rows_;
};

}  // namespace

std::string IndexKey::ToString() const {
  return table + "." + column + " @" + model + " [" +
         SemanticJoinStrategyName(kind) + "]";
}

std::size_t IndexKeyHash::operator()(const IndexKey& k) const {
  std::uint64_t h = HashString(k.table);
  h = HashCombine(h, HashString(k.column));
  h = HashCombine(h, HashString(k.model));
  h = HashCombine(h, static_cast<std::uint64_t>(k.kind));
  return static_cast<std::size_t>(h);
}

IndexManager::IndexManager(const Catalog* catalog, const ModelRegistry* models,
                           IndexManagerOptions options)
    : catalog_(catalog), models_(models), options_(std::move(options)) {}

Result<std::shared_ptr<const VectorIndex>> IndexManager::BuildIndex(
    const IndexKey& key, std::uint64_t* table_version, bool serial) const {
  // Snapshot table + version atomically: the entry must never pair a new
  // table's contents with an older stamp (it would mask an invalidation).
  CRE_ASSIGN_OR_RETURN(Catalog::VersionedTable vt,
                       catalog_->GetVersioned(key.table));
  *table_version = vt.version;
  CRE_ASSIGN_OR_RETURN(const Column* col, vt.table->ColumnByName(key.column));
  if (col->type() != DataType::kString) {
    return Status::TypeError("index column '" + key.column +
                             "' of table '" + key.table +
                             "' must be a string column");
  }
  CRE_ASSIGN_OR_RETURN(EmbeddingModelPtr model, models_->Get(key.model));

  const auto& words = col->strings();
  const std::size_t dim = model->dim();

  // Embed and index each distinct value once; remember which rows hold it.
  std::vector<std::string> distinct;
  std::vector<std::vector<std::uint32_t>> postings;
  {
    std::unordered_map<std::string_view, std::uint32_t> seen;
    seen.reserve(words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
      auto [it, inserted] = seen.emplace(
          std::string_view(words[i]),
          static_cast<std::uint32_t>(distinct.size()));
      if (inserted) {
        distinct.push_back(words[i]);
        postings.emplace_back();
      }
      postings[it->second].push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<float> matrix(distinct.size() * dim);
  model->EmbedBatch(distinct, matrix.data());

  // Background builds execute on a pool worker; fanning construction out
  // over the pool from there would make a worker block in Wait (deadlock
  // on small pools), so they build serially inside their one task.
  HnswOptions hnsw = options_.hnsw;
  if (serial) hnsw.build_pool = nullptr;

  std::unique_ptr<VectorIndex> index;
  switch (key.kind) {
    case SemanticJoinStrategy::kBruteForce:
      return Status::InvalidArgument(
          "brute force is not an index kind (nothing to cache)");
    case SemanticJoinStrategy::kLsh:
      index = std::make_unique<LshIndex>(options_.lsh);
      break;
    case SemanticJoinStrategy::kIvf:
      index = std::make_unique<IvfIndex>(options_.ivf);
      break;
    case SemanticJoinStrategy::kHnsw:
      index = std::make_unique<HnswIndex>(hnsw);
      break;
  }
  CRE_RETURN_NOT_OK(index->Build(matrix.data(), distinct.size(), dim));
  return std::shared_ptr<const VectorIndex>(std::make_shared<
      DistinctExpandedIndex>(std::move(index), std::move(postings),
                             words.size()));
}

Result<std::shared_ptr<const VectorIndex>> IndexManager::GetOrBuild(
    const IndexKey& key, std::uint64_t* built_version) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;
    EntryPtr entry = it->second;
    if (entry->building) {
      // Single-flight: someone else is building this key; wait for the
      // outcome rather than duplicating the work.
      cv_.wait(lock, [&] { return !entry->building; });
      continue;  // re-find: the entry may have been replaced or removed
    }
    if (entry->table_version != catalog_->Version(key.table)) {
      // Version-stamped invalidation: the base table changed since the
      // build; drop the stale entry and fall through to a rebuild.
      resident_bytes_ -= entry->bytes;
      entries_.erase(it);
      ++counters_.invalidations;
      break;
    }
    entry->lru_tick = ++tick_;
    ++counters_.hits;
    if (built_version != nullptr) *built_version = entry->table_version;
    return entry->index;
  }

  // Miss: install a building placeholder, then build outside the lock so
  // concurrent lookups of other keys (and waiters on this one) don't
  // serialize behind embedding + construction.
  ++counters_.misses;
  EntryPtr entry = std::make_shared<Entry>();
  entry->building = true;
  entries_[key] = entry;
  ++builds_in_flight_;
  lock.unlock();

  std::uint64_t version = 0;
  auto built = BuildIndex(key, &version);

  lock.lock();
  const Status status = built.ok() ? Status::OK() : built.status();
  FinishBuildLocked(key, entry, std::move(built), version, built_version);
  if (!status.ok()) return status;
  return entry->index;
}

void IndexManager::FinishBuildLocked(
    const IndexKey& key, const EntryPtr& entry,
    Result<std::shared_ptr<const VectorIndex>>&& built,
    std::uint64_t version, std::uint64_t* built_version) {
  entry->building = false;
  --builds_in_flight_;
  if (!built.ok()) {
    entry->build_status = built.status();
    ++counters_.build_failures;
    // Only remove our own placeholder (a concurrent invalidation path
    // never replaces a building entry, but stay defensive).
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) entries_.erase(it);
    cv_.notify_all();
    return;
  }
  entry->index = std::move(built).ValueUnsafe();
  entry->table_version = version;
  if (built_version != nullptr) *built_version = version;
  entry->bytes = entry->index->MemoryBytes();
  entry->lru_tick = ++tick_;
  resident_bytes_ += entry->bytes;
  ++counters_.builds;
  EvictForBudgetLocked(entry.get());
  cv_.notify_all();
}

void IndexManager::EnableAsyncBuilds(TaskRunner* background_runner) {
  std::lock_guard<std::mutex> lock(mu_);
  background_runner_ = background_runner;
}

Result<IndexManager::AsyncIndex> IndexManager::GetOrBuildAsync(
    const IndexKey& key) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool async =
        background_runner_ != nullptr && options_.async_builds;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      EntryPtr entry = it->second;
      if (entry->building) {
        if (async) {
          // Someone (a sibling query or the background runner) is
          // already on it; report in-flight instead of joining the wait.
          ++counters_.async_fallbacks;
          return AsyncIndex{nullptr, 0, true};
        }
        // Async off: fall through to the blocking path below, which
        // joins the single-flight wait exactly like GetOrBuild.
      } else if (entry->table_version == catalog_->Version(key.table)) {
        entry->lru_tick = ++tick_;
        ++counters_.hits;
        return AsyncIndex{entry->index, entry->table_version, false};
      } else {
        // Stale: drop and fall through to scheduling a rebuild.
        resident_bytes_ -= entry->bytes;
        entries_.erase(it);
        ++counters_.invalidations;
      }
    }
    // Reaching here async: the entry was absent or stale (a building
    // entry returned in-flight above) — schedule the background build.
    if (async) {
      ++counters_.misses;
      ++counters_.background_builds;
      ++counters_.async_fallbacks;
      EntryPtr entry = std::make_shared<Entry>();
      entry->building = true;
      entries_[key] = entry;
      ++builds_in_flight_;
      // Single-flight still holds: subsequent lookups of this key see the
      // building placeholder above until the task completes.
      background_runner_->Submit([this, key, entry] {
        std::uint64_t version = 0;
        auto built = BuildIndex(key, &version, /*serial=*/true);
        std::lock_guard<std::mutex> lock(mu_);
        FinishBuildLocked(key, entry, std::move(built), version, nullptr);
      });
      return AsyncIndex{nullptr, 0, true};
    }
  }
  // Async disabled: preserve the blocking single-flight behavior.
  std::uint64_t version = 0;
  CRE_ASSIGN_OR_RETURN(std::shared_ptr<const VectorIndex> index,
                       GetOrBuild(key, &version));
  return AsyncIndex{std::move(index), version, false};
}

void IndexManager::WaitForBuilds() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return builds_in_flight_ == 0; });
}

void IndexManager::EvictForBudgetLocked(const Entry* keep) {
  while (resident_bytes_ > options_.memory_budget_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->building || it->second.get() == keep) continue;
      if (victim == entries_.end() ||
          it->second->lru_tick < victim->second->lru_tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing evictable
    resident_bytes_ -= victim->second->bytes;
    entries_.erase(victim);
    ++counters_.evictions;
  }
}

bool IndexManager::IsResident(const IndexKey& key) const {
  return Residency(key) == IndexResidency::kResident;
}

IndexResidency IndexManager::Residency(const IndexKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return IndexResidency::kAbsent;
  if (it->second->building) return IndexResidency::kBuilding;
  return it->second->table_version == catalog_->Version(key.table)
             ? IndexResidency::kResident
             : IndexResidency::kAbsent;
}

void IndexManager::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.table == table && !it->second->building) {
      resident_bytes_ -= it->second->bytes;
      it = entries_.erase(it);
      ++counters_.invalidations;
    } else {
      ++it;
    }
  }
}

void IndexManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->building) {
      ++it;
    } else {
      resident_bytes_ -= it->second->bytes;
      it = entries_.erase(it);
    }
  }
}

IndexManager::Stats IndexManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.resident_bytes = resident_bytes_;
  s.resident_count = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (!entry->building) ++s.resident_count;
  }
  return s;
}

}  // namespace cre
