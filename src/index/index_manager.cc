#include "index/index_manager.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/fault_injection.h"
#include "core/logging.h"
#include "vecsim/hnsw_index.h"
#include "vecsim/index_io.h"
#include "vecsim/ivf_index.h"
#include "vecsim/lsh_index.h"

namespace cre {

namespace {

/// Order-sensitive digest of an indexed string column (row count + every
/// value). This — not the process-local catalog stamp — is what proves a
/// persisted index image still matches the live table across restarts.
std::uint64_t ColumnContentHash(const std::vector<std::string>& words) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = HashCombine(h, words.size());
  for (const auto& w : words) h = HashCombine(h, HashString(w));
  return h;
}

/// Constructs an unbuilt index of the requested managed family. `serial`
/// strips the HNSW build pool (see IndexManager::BuildIndex).
std::unique_ptr<VectorIndex> MakeInnerIndex(SemanticJoinStrategy kind,
                                            const IndexManagerOptions& options,
                                            bool serial) {
  switch (kind) {
    case SemanticJoinStrategy::kBruteForce:
      return nullptr;
    case SemanticJoinStrategy::kLsh:
      return std::make_unique<LshIndex>(options.lsh);
    case SemanticJoinStrategy::kIvf:
      return std::make_unique<IvfIndex>(options.ivf);
    case SemanticJoinStrategy::kHnsw: {
      HnswOptions hnsw = options.hnsw;
      if (serial) hnsw.build_pool = nullptr;
      return std::make_unique<HnswIndex>(hnsw);
    }
    case SemanticJoinStrategy::kIvfPq:
      return std::make_unique<IvfPqIndex>(options.ivfpq);
  }
  return nullptr;
}

/// Serves hits in base-table row ids from an index built over the
/// column's *distinct* values. Each distinct string embeds (and indexes)
/// once regardless of how often it repeats — on Zipfian corpora this
/// shrinks the index by the duplication factor — and the inner graph/
/// partition structures never degenerate into duplicate cliques. Hits
/// expand through the postings lists back to every base row holding the
/// value, so callers see ids 0..num_rows as if the index covered the
/// full column.
///
/// The distinct values themselves are retained: the incremental refresh
/// path needs them to tell "appended row holds a known value" (a postings
/// append) from "appended row introduces a new value" (an embedding + an
/// incremental insert into the inner index).
class DistinctExpandedIndex : public VectorIndex {
 public:
  DistinctExpandedIndex(std::unique_ptr<VectorIndex> inner,
                        std::vector<std::string> distinct,
                        std::vector<std::vector<std::uint32_t>> postings,
                        std::size_t num_rows)
      : inner_(std::move(inner)),
        distinct_(std::move(distinct)),
        postings_(std::move(postings)),
        rows_(num_rows) {}

  Status Build(const float*, std::size_t, std::size_t) override {
    return Status::Internal(
        "DistinctExpandedIndex is constructed over a prebuilt inner index");
  }

  /// Incremental append of base rows [first, words.size()): known values
  /// extend their postings list, new values embed once and insert into
  /// the inner index. Deterministic given (current state, appended rows).
  Status AppendRows(const std::vector<std::string>& words, std::size_t first,
                    const EmbeddingModel& model) {
    if (first != rows_ || words.size() < first) {
      return Status::Internal("append prefix does not line up with index");
    }
    std::unordered_map<std::string, std::uint32_t> seen;
    seen.reserve(distinct_.size() * 2);
    for (std::size_t i = 0; i < distinct_.size(); ++i) {
      seen.emplace(distinct_[i], static_cast<std::uint32_t>(i));
    }
    std::vector<std::string> fresh;
    for (std::size_t i = first; i < words.size(); ++i) {
      auto it = seen.find(words[i]);
      std::uint32_t id;
      if (it == seen.end()) {
        id = static_cast<std::uint32_t>(distinct_.size());
        seen.emplace(words[i], id);
        distinct_.push_back(words[i]);
        postings_.emplace_back();
        fresh.push_back(words[i]);
      } else {
        id = it->second;
      }
      postings_[id].push_back(static_cast<std::uint32_t>(i));
    }
    if (!fresh.empty()) {
      const std::size_t dim = model.dim();
      std::vector<float> matrix(fresh.size() * dim);
      model.EmbedBatch(fresh, matrix.data());
      CRE_RETURN_NOT_OK(inner_->Add(matrix.data(), fresh.size(), dim));
    }
    rows_ = words.size();
    return Status::OK();
  }

  void RangeSearch(const float* query, float threshold,
                   std::vector<ScoredId>* out) const override {
    std::vector<ScoredId> hits;
    inner_->RangeSearch(query, threshold, &hits);
    for (const ScoredId& h : hits) {
      for (const std::uint32_t row : postings_[h.id]) {
        out->push_back({row, h.score});
      }
    }
  }

  std::vector<ScoredId> TopK(const float* query,
                             std::size_t k) const override {
    // k distinct hits expand to >= k rows (every value has >= 1 row), so
    // asking the inner index for k is always sufficient.
    std::vector<ScoredId> out;
    out.reserve(k);
    for (const ScoredId& h : inner_->TopK(query, k)) {
      for (const std::uint32_t row : postings_[h.id]) {
        if (out.size() >= k) return out;
        out.push_back({row, h.score});
      }
    }
    return out;
  }

  std::size_t size() const override { return rows_; }
  std::size_t dim() const override { return inner_->dim(); }
  std::string name() const override { return inner_->name(); }
  std::size_t MemoryBytes() const override {
    std::size_t bytes = inner_->MemoryBytes();
    for (const auto& p : postings_) {
      bytes += p.size() * sizeof(std::uint32_t);
    }
    for (const auto& d : distinct_) bytes += d.size();
    return bytes;
  }

  std::unique_ptr<VectorIndex> Clone() const override {
    std::unique_ptr<VectorIndex> inner = inner_->Clone();
    if (inner == nullptr) return nullptr;
    return std::make_unique<DistinctExpandedIndex>(std::move(inner), distinct_,
                                                   postings_, rows_);
  }

  Status Save(std::ostream& out) const override {
    CRE_RETURN_NOT_OK(vecio::WriteTag(out, kWrapperMagic, kWrapperVersion));
    CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, rows_));
    CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, distinct_.size()));
    for (const auto& d : distinct_) {
      CRE_RETURN_NOT_OK(vecio::WriteString(out, d));
    }
    CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, postings_.size()));
    for (const auto& p : postings_) {
      CRE_RETURN_NOT_OK(vecio::WriteVec(out, p));
    }
    return inner_->Save(out);
  }

  /// Deserializes a wrapper image into `inner` (an unbuilt index of the
  /// right family) and returns the reassembled managed index. Every
  /// structural claim in the file is validated before it is trusted.
  static Result<std::unique_ptr<DistinctExpandedIndex>> LoadManaged(
      std::istream& in, std::unique_ptr<VectorIndex> inner) {
    CRE_RETURN_NOT_OK(
        vecio::ExpectTag(in, kWrapperMagic, kWrapperVersion, "managed index"));
    std::uint64_t rows = 0, distinct_count = 0, postings_count = 0;
    CRE_RETURN_NOT_OK(vecio::ReadPod(in, &rows));
    CRE_RETURN_NOT_OK(vecio::ReadPod(in, &distinct_count));
    if (distinct_count > rows) {
      return Status::InvalidArgument(
          "managed index load: more distinct values than rows");
    }
    std::vector<std::string> distinct(
        static_cast<std::size_t>(distinct_count));
    for (auto& d : distinct) {
      CRE_RETURN_NOT_OK(vecio::ReadString(in, &d));
    }
    CRE_RETURN_NOT_OK(vecio::ReadPod(in, &postings_count));
    if (postings_count != distinct_count) {
      return Status::InvalidArgument(
          "managed index load: postings/distinct mismatch");
    }
    std::vector<std::vector<std::uint32_t>> postings(
        static_cast<std::size_t>(postings_count));
    std::uint64_t total = 0;
    for (auto& p : postings) {
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &p));
      total += p.size();
      for (const std::uint32_t row : p) {
        if (row >= rows) {
          return Status::InvalidArgument(
              "managed index load: posting row out of range");
        }
      }
    }
    if (total != rows) {
      return Status::InvalidArgument(
          "managed index load: postings do not partition the rows");
    }
    CRE_RETURN_NOT_OK(inner->Load(in));
    if (inner->size() != distinct.size()) {
      return Status::InvalidArgument(
          "managed index load: inner size does not match distinct values");
    }
    return std::make_unique<DistinctExpandedIndex>(
        std::move(inner), std::move(distinct), std::move(postings),
        static_cast<std::size_t>(rows));
  }

 private:
  static constexpr std::uint32_t kWrapperMagic = 0x43575250;  // "CWRP"
  static constexpr std::uint32_t kWrapperVersion = 1;

  std::unique_ptr<VectorIndex> inner_;
  std::vector<std::string> distinct_;
  std::vector<std::vector<std::uint32_t>> postings_;
  std::size_t rows_;
};

// ---- persisted image header ----
// One image = [manager header][wrapper payload][inner payload]. The
// header carries the full index identity plus the freshness evidence, so
// a scan can build the on-disk catalog from headers alone and a load can
// reject a stale or foreign image before touching the payload.

constexpr std::uint32_t kImageMagic = 0x43524D47;  // "CRMG"
constexpr std::uint32_t kImageVersion = 1;

Status WriteImageHeader(std::ostream& out, const IndexKey& key,
                        std::uint64_t catalog_stamp,
                        std::uint64_t content_hash, std::uint64_t rows) {
  CRE_RETURN_NOT_OK(vecio::WriteTag(out, kImageMagic, kImageVersion));
  CRE_RETURN_NOT_OK(vecio::WriteString(out, key.table));
  CRE_RETURN_NOT_OK(vecio::WriteString(out, key.column));
  CRE_RETURN_NOT_OK(vecio::WriteString(out, key.model));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint32_t>(out, static_cast<std::uint32_t>(key.kind)));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, catalog_stamp));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, content_hash));
  return vecio::WritePod<std::uint64_t>(out, rows);
}

Status ReadImageHeader(std::istream& in, IndexKey* key,
                       std::uint64_t* catalog_stamp,
                       std::uint64_t* content_hash, std::uint64_t* rows) {
  CRE_RETURN_NOT_OK(
      vecio::ExpectTag(in, kImageMagic, kImageVersion, "index image"));
  CRE_RETURN_NOT_OK(vecio::ReadString(in, &key->table));
  CRE_RETURN_NOT_OK(vecio::ReadString(in, &key->column));
  CRE_RETURN_NOT_OK(vecio::ReadString(in, &key->model));
  std::uint32_t kind = 0;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &kind));
  if (kind > static_cast<std::uint32_t>(SemanticJoinStrategy::kIvfPq)) {
    return Status::InvalidArgument("index image: unknown family");
  }
  key->kind = static_cast<SemanticJoinStrategy>(kind);
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, catalog_stamp));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, content_hash));
  return vecio::ReadPod(in, rows);
}

}  // namespace

std::string IndexKey::ToString() const {
  return table + "." + column + " @" + model + " [" +
         SemanticJoinStrategyName(kind) + "]";
}

std::size_t IndexKeyHash::operator()(const IndexKey& k) const {
  std::uint64_t h = HashString(k.table);
  h = HashCombine(h, HashString(k.column));
  h = HashCombine(h, HashString(k.model));
  h = HashCombine(h, static_cast<std::uint64_t>(k.kind));
  return static_cast<std::size_t>(h);
}

IndexManager::IndexManager(const Catalog* catalog, const ModelRegistry* models,
                           IndexManagerOptions options)
    : catalog_(catalog), models_(models), options_(std::move(options)) {
  ScanPersistDir();
}

Result<std::shared_ptr<const VectorIndex>> IndexManager::BuildIndex(
    const IndexKey& key, std::uint64_t* table_version,
    std::uint64_t* content_hash, bool serial) const {
  // Snapshot table + version atomically: the entry must never pair a new
  // table's contents with an older stamp (it would mask an invalidation).
  CRE_ASSIGN_OR_RETURN(Catalog::VersionedTable vt,
                       catalog_->GetVersioned(key.table));
  *table_version = vt.version;
  CRE_ASSIGN_OR_RETURN(const Column* col, vt.table->ColumnByName(key.column));
  if (col->type() != DataType::kString) {
    return Status::TypeError("index column '" + key.column +
                             "' of table '" + key.table +
                             "' must be a string column");
  }
  CRE_ASSIGN_OR_RETURN(EmbeddingModelPtr model, models_->Get(key.model));

  const auto& words = col->strings();
  if (content_hash != nullptr) *content_hash = ColumnContentHash(words);
  const std::size_t dim = model->dim();

  // Embed and index each distinct value once; remember which rows hold it.
  std::vector<std::string> distinct;
  std::vector<std::vector<std::uint32_t>> postings;
  {
    std::unordered_map<std::string_view, std::uint32_t> seen;
    seen.reserve(words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
      auto [it, inserted] = seen.emplace(
          std::string_view(words[i]),
          static_cast<std::uint32_t>(distinct.size()));
      if (inserted) {
        distinct.push_back(words[i]);
        postings.emplace_back();
      }
      postings[it->second].push_back(static_cast<std::uint32_t>(i));
    }
  }
  // The transient embed matrix is the build's allocation spike; charge it
  // against the engine-wide governor before allocating. A breach fails
  // the build with kResourceExhausted and the semantic strategies fall
  // back to brute force — never std::bad_alloc.
  const std::size_t matrix_bytes = distinct.size() * dim * sizeof(float);
  struct GovernorGuard {
    ResourceGovernor* governor = nullptr;
    std::size_t bytes = 0;
    ~GovernorGuard() {
      if (governor != nullptr) governor->Release(bytes);
    }
  } guard;
  if (options_.governor != nullptr) {
    CRE_RETURN_NOT_OK(
        options_.governor->Charge(matrix_bytes, "index build embed matrix"));
    guard.governor = options_.governor;
    guard.bytes = matrix_bytes;
  }
  CRE_RETURN_IF_FAULT("index.build.embed");
  std::vector<float> matrix(distinct.size() * dim);
  model->EmbedBatch(distinct, matrix.data());

  CRE_RETURN_IF_FAULT("index.build.construct");
  // Background builds execute on a pool worker; fanning construction out
  // over the pool from there would make a worker block in Wait (deadlock
  // on small pools), so they build serially inside their one task.
  std::unique_ptr<VectorIndex> index = MakeInnerIndex(key.kind, options_,
                                                      serial);
  if (index == nullptr) {
    return Status::InvalidArgument(
        "brute force is not an index kind (nothing to cache)");
  }
  CRE_RETURN_NOT_OK(index->Build(matrix.data(), distinct.size(), dim));
  return std::shared_ptr<const VectorIndex>(std::make_shared<
      DistinctExpandedIndex>(std::move(index), std::move(distinct),
                             std::move(postings), words.size()));
}

bool IndexManager::RefreshIsCheaper(const Catalog::AppendChain& chain) const {
  const double total = static_cast<double>(chain.table->num_rows());
  const double appended = total - static_cast<double>(chain.prefix_rows);
  if (appended <= 0) return true;  // nothing to insert: trivially cheap
  return appended * options_.refresh_cost_per_row <=
         total * options_.rebuild_cost_per_row;
}

Result<std::shared_ptr<const VectorIndex>> IndexManager::RefreshIndex(
    const IndexKey& key, const std::shared_ptr<const VectorIndex>& old_index,
    std::uint64_t old_version, std::uint64_t* new_version,
    std::uint64_t* content_hash) const {
  // Re-fetch the chain under the catalog lock: the table, its head
  // stamp, and the proof that everything since old_version was
  // append-style arrive as one consistent unit, so the refreshed entry
  // is stamped with exactly the contents it indexed. If yet another
  // append lands while we refresh, the entry comes out stale again and
  // the next lookup refreshes once more — never wrong, at worst late.
  CRE_ASSIGN_OR_RETURN(Catalog::AppendChain chain,
                       catalog_->AppendedSince(key.table, old_version));
  const auto* old_wrapper =
      dynamic_cast<const DistinctExpandedIndex*>(old_index.get());
  if (old_wrapper == nullptr || old_wrapper->size() != chain.prefix_rows) {
    return Status::Internal("refresh prefix does not match resident index");
  }
  CRE_ASSIGN_OR_RETURN(const Column* col,
                       chain.table->ColumnByName(key.column));
  if (col->type() != DataType::kString) {
    return Status::TypeError("index column '" + key.column +
                             "' must be a string column");
  }
  CRE_ASSIGN_OR_RETURN(EmbeddingModelPtr model, models_->Get(key.model));
  const auto& words = col->strings();

  // Copy-on-write: queries holding the old shared_ptr keep probing an
  // untouched immutable graph; all mutation goes into the clone.
  std::unique_ptr<VectorIndex> cloned = old_wrapper->Clone();
  auto* wrapper = dynamic_cast<DistinctExpandedIndex*>(cloned.get());
  if (wrapper == nullptr) {
    return Status::Internal("managed index family does not support cloning");
  }
  CRE_RETURN_IF_FAULT("index.refresh.append");
  CRE_RETURN_NOT_OK(wrapper->AppendRows(words, chain.prefix_rows, *model));
  *new_version = chain.to_version;
  if (content_hash != nullptr) *content_hash = ColumnContentHash(words);
  return std::shared_ptr<const VectorIndex>(std::move(cloned));
}

std::string IndexManager::PersistPathFor(const IndexKey& key) const {
  return options_.persist_dir + "/cre_" +
         std::to_string(IndexKeyHash{}(key)) + ".idx";
}

void IndexManager::ScanPersistDir() {
  if (options_.persist_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.persist_dir, ec);
  std::filesystem::directory_iterator dir(options_.persist_dir, ec);
  if (ec) return;
  for (const auto& de : dir) {
    if (!de.is_regular_file(ec)) continue;
    const std::string path = de.path().string();
    if (de.path().extension() != ".idx") continue;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) continue;
    IndexKey key;
    PersistedMeta meta;
    if (!ReadImageHeader(in, &key, &meta.catalog_stamp, &meta.content_hash,
                         &meta.rows)
             .ok()) {
      continue;  // foreign or corrupt header: not a warm-start candidate
    }
    meta.path = path;
    std::error_code sec;
    const auto size = de.file_size(sec);
    meta.bytes = sec ? 0 : static_cast<std::uint64_t>(size);
    const auto mtime = de.last_write_time(sec);
    meta.mtime_ns =
        sec ? 0 : static_cast<std::int64_t>(mtime.time_since_epoch().count());
    persisted_[key] = std::move(meta);
  }
}

Status IndexManager::PersistToDiskOnce(
    const IndexKey& key, const std::shared_ptr<const VectorIndex>& index,
    std::uint64_t catalog_stamp, std::uint64_t content_hash) {
  static std::atomic<std::uint64_t> tmp_seq{0};
  const std::string path = PersistPathFor(key);
  // Unique across threads (counter) AND across processes sharing one
  // persist_dir (pid) — e.g. a blue-green restart overlap; colliding tmp
  // names would interleave two writers' bytes and publish garbage over a
  // good image.
  const std::string tmp = path + ".tmp" + std::to_string(::getpid()) + "_" +
                          std::to_string(tmp_seq.fetch_add(1));
  {
    CRE_RETURN_IF_FAULT("persist.open");
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot create index image tmp file: " + tmp);
    }
    Status s = CRE_INJECT_FAULT("persist.write");
    if (s.ok()) {
      s = WriteImageHeader(out, key, catalog_stamp, content_hash,
                           index->size());
    }
    if (s.ok()) s = index->Save(out);
    out.flush();
    if (s.ok() && !out.good()) {
      s = Status::IoError("short write persisting index image: " + tmp);
    }
    if (!s.ok()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return s;
    }
  }
  // Atomic publish: readers only ever see a complete image. The rename
  // runs under mu_ so a slow writer that lost the race to a newer
  // install (a refresh that finished after this build released the
  // lock) cannot roll the published image back to an older stamp.
  std::error_code ec;
  bool published = false;
  Status rename_status;
  std::vector<std::string> doomed;
  {
    MutexLock lock(mu_);
    auto it = persisted_.find(key);
    // Only a stamp written by THIS process is comparable (catalog
    // stamps restart with the process); a scanned image from a previous
    // run never outranks a fresh write.
    if (it != persisted_.end() && it->second.stamp_local &&
        it->second.catalog_stamp > catalog_stamp) {
      // A newer image is already published; discard ours (a success: the
      // key is persisted, just by someone fresher).
    } else {
      Status fault = CRE_INJECT_FAULT("persist.rename");
      if (fault.ok()) {
        std::filesystem::rename(tmp, path, ec);
      }
      if (!fault.ok() || ec) {
        rename_status =
            fault.ok() ? Status::IoError("cannot publish index image: " +
                                         path + " (" + ec.message() + ")")
                       : fault;
      } else {
        PersistedMeta meta{path, catalog_stamp, content_hash, index->size(),
                           /*stamp_local=*/true};
        std::error_code sec;
        const auto size = std::filesystem::file_size(path, sec);
        meta.bytes = sec ? 0 : static_cast<std::uint64_t>(size);
        const auto mtime = std::filesystem::last_write_time(path, sec);
        meta.mtime_ns = sec ? 0 : static_cast<std::int64_t>(
                                      mtime.time_since_epoch().count());
        persisted_[key] = std::move(meta);
        ++counters_.disk_writes;
        published = true;
        SweepPersistBudgetLocked(key, &doomed);
      }
    }
  }
  for (const auto& victim : doomed) {
    std::filesystem::remove(victim, ec);
  }
  if (!published) std::filesystem::remove(tmp, ec);
  return rename_status;
}

void IndexManager::PersistToDisk(
    const IndexKey& key, const std::shared_ptr<const VectorIndex>& index,
    std::uint64_t catalog_stamp, std::uint64_t content_hash) {
  if (options_.persist_dir.empty() || index == nullptr) return;
  const int attempts =
      options_.persist_retry_attempts < 1 ? 1 : options_.persist_retry_attempts;
  double backoff_ms = options_.persist_retry_backoff_ms;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Transient write failure (fd pressure, a racing unlink, a slow
      // filesystem): back off exponentially, then try a fresh tmp file.
      {
        MutexLock lock(mu_);
        ++counters_.disk_retries;
      }
      if (backoff_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
        backoff_ms *= 2;
      }
    }
    Status s = PersistToDiskOnce(key, index, catalog_stamp, content_hash);
    if (s.ok()) return;
  }
  // Attempts exhausted: the image is simply not persisted this round —
  // resident serving is unaffected, and the next install tries again.
}

void IndexManager::SchedulePersist(const IndexKey& key,
                                   std::shared_ptr<const VectorIndex> index,
                                   std::uint64_t catalog_stamp,
                                   std::uint64_t content_hash) {
  if (options_.persist_dir.empty() || index == nullptr) return;
  TaskRunner* runner = nullptr;
  {
    MutexLock lock(mu_);
    runner = background_runner_;
    // The pending write counts like a build so WaitForBuilds covers it:
    // a waiter may destroy the manager the moment the count drops, so
    // the task must decrement as its very last manager touch.
    if (runner != nullptr) ++builds_in_flight_;
  }
  if (runner == nullptr) {
    PersistToDisk(key, index, catalog_stamp, content_hash);
    return;
  }
  runner->Submit([this, key, index = std::move(index), catalog_stamp,
                  content_hash] {
    PersistToDisk(key, index, catalog_stamp, content_hash);
    MutexLock lock(mu_);
    --builds_in_flight_;
    cv_.NotifyAll();
  });
}

void IndexManager::SweepPersistBudgetLocked(const IndexKey& just_written,
                                            std::vector<std::string>* doomed) {
  if (options_.persist_budget_bytes == 0) return;
  std::uint64_t total = 0;
  for (const auto& [key, meta] : persisted_) {
    (void)key;
    total += meta.bytes;
  }
  while (total > options_.persist_budget_bytes) {
    auto victim = persisted_.end();
    for (auto it = persisted_.begin(); it != persisted_.end(); ++it) {
      if (it->first == just_written) continue;
      if (victim == persisted_.end() ||
          it->second.mtime_ns < victim->second.mtime_ns) {
        victim = it;
      }
    }
    // Never reclaim the image that triggered the sweep: an over-budget
    // singleton would otherwise write-then-delete itself forever.
    if (victim == persisted_.end()) return;
    total -= victim->second.bytes;
    doomed->push_back(victim->second.path);
    persisted_.erase(victim);
    ++counters_.disk_gc;
  }
}

void IndexManager::DropPersisted(const IndexKey& key) {
  std::string path;
  {
    MutexLock lock(mu_);
    auto it = persisted_.find(key);
    if (it == persisted_.end()) return;
    path = it->second.path;
    persisted_.erase(it);
    ++counters_.disk_rejects;
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

Result<std::shared_ptr<const VectorIndex>> IndexManager::LoadFromDisk(
    const IndexKey& key, std::uint64_t* table_version,
    std::uint64_t* content_hash) const {
  std::string path;
  {
    MutexLock lock(mu_);
    auto it = persisted_.find(key);
    if (it == persisted_.end()) {
      return Status::NotFound("no persisted image for " + key.ToString());
    }
    path = it->second.path;
  }
  CRE_RETURN_IF_FAULT("load.open");
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("persisted image unreadable: " + path);
  }
  CRE_RETURN_IF_FAULT("load.read");
  IndexKey file_key;
  std::uint64_t saved_stamp = 0, saved_hash = 0, saved_rows = 0;
  CRE_RETURN_NOT_OK(
      ReadImageHeader(in, &file_key, &saved_stamp, &saved_hash, &saved_rows));
  if (!(file_key == key)) {
    return Status::InvalidArgument("persisted image identity mismatch");
  }
  // Freshness is judged against the *live* table, by content: catalog
  // stamps are process-local, so after a restart only the column digest
  // can prove the image still matches. A mismatch (the table changed
  // while the image sat on disk) is a rejection, never a stale serve.
  CRE_ASSIGN_OR_RETURN(Catalog::VersionedTable vt,
                       catalog_->GetVersioned(key.table));
  CRE_ASSIGN_OR_RETURN(const Column* col, vt.table->ColumnByName(key.column));
  if (col->type() != DataType::kString) {
    return Status::TypeError("persisted image over non-string column");
  }
  const auto& words = col->strings();
  if (words.size() != saved_rows ||
      ColumnContentHash(words) != saved_hash) {
    return Status::InvalidArgument(
        "persisted image stale: table content changed since save");
  }
  std::unique_ptr<VectorIndex> inner =
      MakeInnerIndex(key.kind, options_, /*serial=*/true);
  if (inner == nullptr) {
    return Status::InvalidArgument("persisted image of non-index family");
  }
  CRE_ASSIGN_OR_RETURN(std::unique_ptr<DistinctExpandedIndex> wrapper,
                       DistinctExpandedIndex::LoadManaged(in, std::move(inner)));
  if (wrapper->size() != words.size()) {
    return Status::InvalidArgument("persisted image row count mismatch");
  }
  *table_version = vt.version;
  if (content_hash != nullptr) *content_hash = saved_hash;
  return std::shared_ptr<const VectorIndex>(std::move(wrapper));
}

Result<std::shared_ptr<const VectorIndex>> IndexManager::GetOrBuild(
    const IndexKey& key, std::uint64_t* built_version) {
  MutexLock lock(mu_);
  lookup_keys_.insert(key);
  bool counted_miss = false;
  std::string doomed_image;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;
    EntryPtr entry = it->second;
    if (entry->building) {
      // Single-flight: someone else is building this key; wait for the
      // outcome rather than duplicating the work.
      while (entry->building) cv_.Wait(lock);
      continue;  // re-find: the entry may have been replaced or removed
    }
    if (entry->table_version == catalog_->Version(key.table)) {
      entry->lru_tick = ++tick_;
      ++counters_.hits;
      if (built_version != nullptr) *built_version = entry->table_version;
      return entry->index;
    }
    // Stale. When everything since the build was append-style AND the
    // appended fraction is small enough that per-row incremental inserts
    // beat a bulk rebuild (RefreshIsCheaper — by estimated cost, not
    // merely by the chain existing), renew the entry in place: clone +
    // insert only the appended rows. Single-flight like a build.
    auto chain = options_.incremental_maintenance
                     ? catalog_->AppendedSince(key.table, entry->table_version)
                     : Result<Catalog::AppendChain>(
                           Status::Aborted("maintenance off"));
    if (chain.ok() && RefreshIsCheaper(chain.ValueUnsafe())) {
      if (!counted_miss) {
        ++counters_.misses;
        counted_miss = true;
      }
      const std::shared_ptr<const VectorIndex> old_index = entry->index;
      const std::uint64_t old_version = entry->table_version;
      entry->building = true;
      ++builds_in_flight_;
      lock.Unlock();
      std::uint64_t version = 0, hash = 0;
      // The content hash only feeds the persisted-image header; skip the
      // O(column) hashing pass entirely when persistence is off.
      std::uint64_t* hash_out =
          options_.persist_dir.empty() ? nullptr : &hash;
      auto refreshed =
          RefreshIndex(key, old_index, old_version, &version, hash_out);
      lock.Lock();
      const bool ok = refreshed.ok();
      FinishInstallLocked(key, entry, std::move(refreshed), version,
                          built_version, InstallSource::kRefresh);
      if (ok) {
        std::shared_ptr<const VectorIndex> index = entry->index;
        lock.Unlock();
        SchedulePersist(key, index, version, hash);
        return index;
      }
      continue;  // chain broke mid-flight: fall back to a full rebuild
    }
    // Version-stamped invalidation: the base table changed destructively
    // since the build; drop the stale entry and fall through to a rebuild.
    resident_bytes_ -= entry->bytes;
    entries_.erase(it);
    ++counters_.invalidations;
    // A this-process image stamped before the destructive change can
    // never validate again (the content hash now disagrees); reclaim it
    // instead of leaving a dead file for the next startup scan to carry.
    // Scanned images keep their benefit of the doubt until load time.
    auto pit = persisted_.find(key);
    if (pit != persisted_.end() && pit->second.stamp_local &&
        pit->second.catalog_stamp != catalog_->Version(key.table)) {
      doomed_image = pit->second.path;
      persisted_.erase(pit);
      ++counters_.disk_gc;
    }
    CheckAccountingLocked();
    break;
  }

  // Miss: install a building placeholder, then build outside the lock so
  // concurrent lookups of other keys (and waiters on this one) don't
  // serialize behind embedding + construction. A persisted image, when
  // present and still matching the live table, is adopted instead of
  // paying the build.
  if (!counted_miss) ++counters_.misses;
  EntryPtr entry = std::make_shared<Entry>();
  entry->building = true;
  entries_[key] = entry;
  ++builds_in_flight_;
  const bool try_disk = HasPersistedLocked(key);
  lock.Unlock();
  if (!doomed_image.empty()) {
    std::error_code ec;
    std::filesystem::remove(doomed_image, ec);
  }

  std::uint64_t version = 0, hash = 0;
  std::uint64_t* hash_out = options_.persist_dir.empty() ? nullptr : &hash;
  InstallSource source = InstallSource::kBuild;
  Result<std::shared_ptr<const VectorIndex>> built(
      Status::Internal("index lookup never attempted"));
  if (try_disk) {
    built = LoadFromDisk(key, &version, &hash);
    if (built.ok()) {
      source = InstallSource::kDiskLoad;
    } else if (built.status().IsInvalidArgument() ||
               built.status().code() == StatusCode::kOutOfRange) {
      // Only a validation verdict (foreign/corrupt/truncated/stale
      // content) proves the image bad. Transient failures — the file
      // unreadable under fd pressure, the table momentarily dropped —
      // must leave a still-valid image in place for the next start.
      DropPersisted(key);
    }
  }
  if (source != InstallSource::kDiskLoad) {
    built = BuildIndex(key, &version, hash_out);
  }

  lock.Lock();
  const Status status = built.ok() ? Status::OK() : built.status();
  FinishInstallLocked(key, entry, std::move(built), version,
                      built_version, source);
  if (!status.ok()) return status;
  if (source == InstallSource::kDiskLoad) {
    // The adopted image is now proven fresh for the live table at
    // `version`: localize its stamp so subsequent plausibility probes
    // and anti-rollback checks compare real (this-process) versions.
    auto pit = persisted_.find(key);
    if (pit != persisted_.end()) {
      pit->second.catalog_stamp = version;
      pit->second.stamp_local = true;
    }
  }
  std::shared_ptr<const VectorIndex> index = entry->index;
  lock.Unlock();
  if (source == InstallSource::kBuild) {
    // Background write-through when a runner is wired: file I/O comes off
    // the first query's latency (ROADMAP "persistence hygiene").
    SchedulePersist(key, index, version, hash);
  }
  return index;
}

void IndexManager::FinishInstallLocked(
    const IndexKey& key, const EntryPtr& entry,
    Result<std::shared_ptr<const VectorIndex>>&& built, std::uint64_t version,
    std::uint64_t* built_version, InstallSource source) {
  entry->building = false;
  --builds_in_flight_;
  if (!built.ok()) {
    entry->build_status = built.status();
    if (source == InstallSource::kBuild) ++counters_.build_failures;
    if (source == InstallSource::kRefresh) ++counters_.invalidations;
    // Only remove our own entry (a concurrent invalidation path never
    // replaces a building entry, but stay defensive). A failed refresh
    // drops the stale entry it was renewing — its footprint leaves the
    // aggregate with it — and the caller falls back to a rebuild.
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second == entry) {
      resident_bytes_ -= entry->bytes;
      entries_.erase(it);
    }
    cv_.NotifyAll();
    CheckAccountingLocked();
    return;
  }
  // Byte accounting is recomputed on every install: refreshes grow the
  // index, so a footprint captured at first build would drift under the
  // real one and the budget would silently over-admit.
  resident_bytes_ -= entry->bytes;
  entry->index = std::move(built).ValueUnsafe();
  entry->table_version = version;
  if (built_version != nullptr) *built_version = version;
  entry->bytes = entry->index->MemoryBytes();
  resident_bytes_ += entry->bytes;
  entry->lru_tick = ++tick_;
  switch (source) {
    case InstallSource::kBuild:
      ++counters_.builds;
      break;
    case InstallSource::kRefresh:
      ++counters_.refreshes;
      break;
    case InstallSource::kDiskLoad:
      ++counters_.disk_loads;
      break;
  }
  EvictForBudgetLocked(entry.get());
  cv_.NotifyAll();
  CheckAccountingLocked();
}

void IndexManager::EnableAsyncBuilds(TaskRunner* background_runner) {
  MutexLock lock(mu_);
  background_runner_ = background_runner;
}

Result<IndexManager::AsyncIndex> IndexManager::GetOrBuildAsync(
    const IndexKey& key) {
  std::string doomed_image;
  {
    MutexLock lock(mu_);
    lookup_keys_.insert(key);
    const bool async =
        background_runner_ != nullptr && options_.async_builds;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      EntryPtr entry = it->second;
      if (entry->building) {
        if (async) {
          // Someone (a sibling query or the background runner) is
          // already on it; report in-flight instead of joining the wait.
          ++counters_.async_fallbacks;
          return AsyncIndex{nullptr, 0, true};
        }
        // Async off: fall through to the blocking path below, which
        // joins the single-flight wait exactly like GetOrBuild.
      } else if (entry->table_version == catalog_->Version(key.table)) {
        entry->lru_tick = ++tick_;
        ++counters_.hits;
        return AsyncIndex{entry->index, entry->table_version, false};
      } else if (!async) {
        // Stale with async off: the blocking path below refreshes or
        // rebuilds as appropriate; don't pre-judge here.
      } else if (auto chain =
                     options_.incremental_maintenance
                         ? catalog_->AppendedSince(key.table,
                                                   entry->table_version)
                         : Result<Catalog::AppendChain>(
                               Status::Aborted("maintenance off"));
                 chain.ok() && RefreshIsCheaper(chain.ValueUnsafe())) {
        // Stale by appends only, and the appended fraction is below the
        // cost crossover: renew incrementally at background priority —
        // the query stream keeps probing brute-force (or the old index
        // via its own snapshot pairing) until the refresh lands.
        // Single-flight via the building flag. Past the crossover the
        // entry drops below and a full rebuild is scheduled instead.
        ++counters_.misses;
        ++counters_.background_builds;
        ++counters_.async_fallbacks;
        const std::shared_ptr<const VectorIndex> old_index = entry->index;
        const std::uint64_t old_version = entry->table_version;
        entry->building = true;
        ++builds_in_flight_;
        background_runner_->Submit(
            [this, key, entry, old_index, old_version] {
              std::uint64_t version = 0, hash = 0;
              auto refreshed = RefreshIndex(
                  key, old_index, old_version, &version,
                  options_.persist_dir.empty() ? nullptr : &hash);
              // Persist BEFORE installing: FinishInstallLocked releases
              // WaitForBuilds (builds_in_flight_), so nothing in this
              // task may touch the manager after it — a waiter is free
              // to destroy the manager the moment the count drops.
              if (refreshed.ok()) {
                PersistToDisk(key, refreshed.ValueUnsafe(), version, hash);
              }
              MutexLock inner_lock(mu_);
              FinishInstallLocked(key, entry, std::move(refreshed), version,
                                  nullptr, InstallSource::kRefresh);
            });
        return AsyncIndex{nullptr, 0, true};
      } else {
        // Stale destructively: drop and fall through to scheduling a
        // full background rebuild. A this-process image stamped before
        // the change is permanently stale — reclaim it (same reasoning
        // as the blocking path's invalidation).
        resident_bytes_ -= entry->bytes;
        entries_.erase(it);
        ++counters_.invalidations;
        auto pit = persisted_.find(key);
        if (pit != persisted_.end() && pit->second.stamp_local &&
            pit->second.catalog_stamp != catalog_->Version(key.table)) {
          doomed_image = pit->second.path;
          persisted_.erase(pit);
          ++counters_.disk_gc;
        }
        CheckAccountingLocked();
      }
    }
    // Reaching here async: the entry was absent or stale (a building
    // entry returned in-flight above) — schedule the background build,
    // unless a plausibly fresh persisted image can serve it:
    // deserialization is orders of magnitude cheaper than a build, so
    // warm-starting synchronously makes even the first post-restart
    // query index-backed. Mere image existence is not enough — a stale
    // image would be rejected at load and drag this serving-path call
    // into a blocking rebuild.
    if (async && !PersistedPlausibleLocked(key)) {
      ++counters_.misses;
      ++counters_.background_builds;
      ++counters_.async_fallbacks;
      EntryPtr entry = std::make_shared<Entry>();
      entry->building = true;
      entries_[key] = entry;
      ++builds_in_flight_;
      // Single-flight still holds: subsequent lookups of this key see the
      // building placeholder above until the task completes.
      background_runner_->Submit([this, key, entry] {
        std::uint64_t version = 0, hash = 0;
        auto built =
            BuildIndex(key, &version,
                       options_.persist_dir.empty() ? nullptr : &hash,
                       /*serial=*/true);
        // Persist BEFORE installing — see the refresh task above: the
        // install releases WaitForBuilds, after which this task must
        // not touch the manager.
        if (built.ok()) {
          PersistToDisk(key, built.ValueUnsafe(), version, hash);
        }
        MutexLock inner_lock(mu_);
        FinishInstallLocked(key, entry, std::move(built), version,
                            nullptr, InstallSource::kBuild);
      });
      lock.Unlock();
      if (!doomed_image.empty()) {
        std::error_code ec;
        std::filesystem::remove(doomed_image, ec);
      }
      return AsyncIndex{nullptr, 0, true};
    }
  }
  if (!doomed_image.empty()) {
    std::error_code ec;
    std::filesystem::remove(doomed_image, ec);
  }
  // Async disabled, or a persisted image is available: preserve the
  // blocking single-flight behavior (which itself prefers disk to build).
  std::uint64_t version = 0;
  CRE_ASSIGN_OR_RETURN(std::shared_ptr<const VectorIndex> index,
                       GetOrBuild(key, &version));
  return AsyncIndex{std::move(index), version, false};
}

void IndexManager::WaitForBuilds() {
  MutexLock lock(mu_);
  while (builds_in_flight_ != 0) cv_.Wait(lock);
}

void IndexManager::EvictForBudgetLocked(const Entry* keep) {
  while (resident_bytes_ > options_.memory_budget_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->building || it->second.get() == keep) continue;
      if (victim == entries_.end() ||
          it->second->lru_tick < victim->second->lru_tick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing evictable
    // The persisted image (write-through at install) outlives the
    // eviction, so the key degrades to kOnDisk rather than kAbsent.
    resident_bytes_ -= victim->second->bytes;
    entries_.erase(victim);
    ++counters_.evictions;
  }
}

void IndexManager::CheckAccountingLocked() const {
#ifndef NDEBUG
  std::size_t sum = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    sum += entry->bytes;
  }
  CRE_CHECK(sum == resident_bytes_);
#endif
}

bool IndexManager::IsResident(const IndexKey& key) const {
  return Residency(key) == IndexResidency::kResident;
}

bool IndexManager::PersistedPlausibleLocked(const IndexKey& key) const {
  // Cheap probe only (the optimizer calls this per considered strategy,
  // and the async serving path gates its synchronous warm start on it).
  // An image stamped by this process is exact: fresh iff the stamp
  // still matches, so a same-cardinality Put can't lure the serving
  // path into a doomed blocking load. A scanned image (previous run)
  // can only be row-count plausible; the content-hash proof runs at
  // load time, and a lying image is rejected there — the plan's
  // load-cost estimate was merely optimistic.
  auto it = persisted_.find(key);
  if (it == persisted_.end()) return false;
  if (it->second.stamp_local) {
    return it->second.catalog_stamp == catalog_->Version(key.table);
  }
  auto vt = catalog_->GetVersioned(key.table);
  return vt.ok() && vt.ValueOrDie().table->num_rows() == it->second.rows;
}

IndexResidency IndexManager::Residency(const IndexKey& key) const {
  MutexLock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second->building) return IndexResidency::kBuilding;
    if (it->second->table_version == catalog_->Version(key.table)) {
      return IndexResidency::kResident;
    }
    // Stale — but stale *by appends only* (and below the refresh-cost
    // crossover) means the next lookup renews it incrementally at a
    // fraction of a rebuild. The optimizer must see that (kRefreshable),
    // or with a conservative reuse horizon it would flip to brute force
    // after every append and planned queries would never reach the
    // refresh path at all. Past the crossover the lookup will rebuild,
    // so advertising kRefreshable would understate the cost — the entry
    // reports like any other stale entry instead.
    if (options_.incremental_maintenance) {
      auto chain =
          catalog_->AppendedSince(key.table, it->second->table_version);
      if (chain.ok() && RefreshIsCheaper(chain.ValueUnsafe())) {
        return IndexResidency::kRefreshable;
      }
    }
  }
  if (PersistedPlausibleLocked(key)) return IndexResidency::kOnDisk;
  return IndexResidency::kAbsent;
}

void IndexManager::InvalidateTable(const std::string& table) {
  std::vector<std::string> doomed;
  {
    MutexLock lock(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.table == table && !it->second->building) {
        resident_bytes_ -= it->second->bytes;
        it = entries_.erase(it);
        ++counters_.invalidations;
      } else {
        ++it;
      }
    }
    // An explicit invalidation is a destructive signal: the persisted
    // images over this table can never validate again, so reclaim them.
    for (auto it = persisted_.begin(); it != persisted_.end();) {
      if (it->first.table == table) {
        doomed.push_back(it->second.path);
        it = persisted_.erase(it);
      } else {
        ++it;
      }
    }
    CheckAccountingLocked();
  }
  for (const auto& path : doomed) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
}

void IndexManager::Clear() {
  MutexLock lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second->building) {
      ++it;
    } else {
      resident_bytes_ -= it->second->bytes;
      it = entries_.erase(it);
    }
  }
  CheckAccountingLocked();
}

IndexManager::Stats IndexManager::stats() const {
  MutexLock lock(mu_);
  Stats s = counters_;
  s.resident_bytes = resident_bytes_;
  s.distinct_lookup_keys = lookup_keys_.size();
  s.resident_count = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (!entry->building) ++s.resident_count;
  }
  return s;
}

}  // namespace cre
