#ifndef CRE_INDEX_INDEX_MANAGER_H_
#define CRE_INDEX_INDEX_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/hash.h"
#include "core/mutex.h"
#include "core/resource_governor.h"
#include "core/result.h"
#include "embed/model_registry.h"
#include "semantic/semantic_join.h"
#include "storage/catalog.h"
#include "vecsim/vector_index.h"

namespace cre {

/// Identity of one persistent vector index: the embeddings of one string
/// column of one catalog table under one representation model, organized
/// as one physical index family. Two queries that agree on all four share
/// the same index instance.
struct IndexKey {
  std::string table;
  std::string column;
  std::string model;
  SemanticJoinStrategy kind = SemanticJoinStrategy::kHnsw;

  bool operator==(const IndexKey& o) const {
    return kind == o.kind && table == o.table && column == o.column &&
           model == o.model;
  }
  std::string ToString() const;
};

struct IndexKeyHash {
  std::size_t operator()(const IndexKey& k) const;
};

struct IndexManagerOptions {
  /// Master switch: when false the engine never consults the manager and
  /// semantic operators build per-execution indexes as before.
  bool enabled = true;
  /// Asynchronous builds: when true (and the engine has wired a
  /// background runner), a cold GetOrBuildAsync lookup enqueues the build
  /// as a background-priority task and returns immediately so the
  /// requesting query is served by the brute-force path — the cold-build
  /// latency is hidden from the query stream entirely. When false,
  /// GetOrBuildAsync degrades to the blocking GetOrBuild.
  bool async_builds = false;
  /// Incremental maintenance: when true, a stale entry whose base table
  /// changed only by catalog Appends since the build is *refreshed* —
  /// the resident index is cloned (copy-on-write: in-flight queries keep
  /// probing the old immutable instance), the appended rows' new
  /// distinct values are embedded and inserted incrementally, and the
  /// clone is swapped in under the append chain's stamp — instead of
  /// being invalidated and rebuilt from scratch. Refreshes are
  /// single-flight and run at background priority under async_builds.
  bool incremental_maintenance = true;
  /// Refresh-vs-rebuild crossover. Refreshing touches only the appended
  /// rows, but each incrementally inserted row costs a multiple of a
  /// bulk-build row (HNSW: a full beam search against the grown graph
  /// with none of the batched build's sharing; plus the clone). A stale
  /// entry refreshes only while
  ///   appended_rows * refresh_cost_per_row
  ///     <= total_rows * rebuild_cost_per_row
  /// and rebuilds otherwise — with the defaults the crossover sits at
  /// 25% appended, so a table that nearly doubled since the build takes
  /// the rebuild (which also re-trains IVF centroids and re-balances the
  /// graph) instead of grinding through an insert-dominated refresh.
  double refresh_cost_per_row = 4.0;
  double rebuild_cost_per_row = 1.0;
  /// On-disk persistence: when non-empty, every successful build/refresh
  /// write-throughs a versioned index image into this directory
  /// (<dir>/cre_<keyhash>.idx, atomic tmp+rename), and a cold lookup
  /// warm-starts from the matching image instead of rebuilding — so
  /// resident indexes survive both LRU eviction and process restarts.
  /// Images carry the (table, column, model, family) identity, the
  /// catalog stamp at save time, and a content hash of the indexed
  /// column; a load whose identity/content does not match the live
  /// table, or whose file is truncated/corrupt, is rejected and the
  /// lookup falls back to a clean rebuild. Never serves stale data.
  std::string persist_dir;
  /// Total bytes of persisted images kept in persist_dir before the GC
  /// sweep reclaims the oldest (by file modification time). 0 = no
  /// budget (images accumulate until destructively invalidated). The
  /// image just written is never reclaimed by its own write-through.
  std::size_t persist_budget_bytes = 0;
  /// Total bytes of resident indexes before LRU eviction kicks in. The
  /// most recently built index is never evicted by its own insertion.
  std::size_t memory_budget_bytes = 256ull << 20;
  /// Engine-wide memory accountant (may be null). Builds charge the
  /// transient embed matrix against it before allocating; a breach fails
  /// the build with kResourceExhausted — the semantic strategies then
  /// degrade to the brute-force fallback instead of dying.
  ResourceGovernor* governor = nullptr;
  /// Bounded retry for transient persisted-image write failures: total
  /// attempts per image (>= 1) with exponential backoff starting at
  /// `persist_retry_backoff_ms` (doubling per retry). Retries are counted
  /// in Stats::disk_retries / cre_index_disk_retry_total.
  int persist_retry_attempts = 3;
  double persist_retry_backoff_ms = 1.0;
  /// Build parameters for the index families the manager constructs.
  LshOptions lsh;
  IvfOptions ivf;
  HnswOptions hnsw;
  IvfPqOptions ivfpq;
};

/// The engine's persistent vector-index subsystem (paper Sec. V: "index
/// structures for expediting similarity and top-k searches" as first-class,
/// optimizer-visible state). Owns every cached VectorIndex, keyed by
/// IndexKey, and provides:
///
///  - cross-query reuse: GetOrBuild returns a shared, immutable index;
///    repeated queries over the same (table, column, model, kind) pay the
///    embedding + build cost once;
///  - versioned invalidation with incremental maintenance: each entry
///    records the Catalog version stamp of its base table at build time.
///    A destructive change (Put/Drop) makes the entry stale and the next
///    lookup rebuilds; an append-style change (Catalog::Append) makes the
///    next lookup *refresh* the entry in place — clone, insert only the
///    appended rows, swap — at a fraction of the rebuild cost;
///  - a memory budget with LRU eviction over ready entries, with byte
///    accounting recomputed on every install (builds grow on refresh);
///  - on-disk persistence (persist_dir): built indexes spill to disk and
///    cold lookups warm-start from it, surviving process restarts;
///  - thread-safe concurrent access with single-flight builds: concurrent
///    queries needing the same absent index block on one build instead of
///    duplicating it.
///
/// Returned indexes are immutable and safe to probe from any thread; they
/// stay alive (shared_ptr) even if evicted, refreshed, or invalidated
/// mid-query.
class IndexManager {
 public:
  struct Stats {
    std::uint64_t hits = 0;           ///< lookups served by a fresh entry
    std::uint64_t misses = 0;         ///< lookups that required a build
    std::uint64_t builds = 0;         ///< successful full constructions
    std::uint64_t build_failures = 0;
    /// Stale entries renewed by the incremental append path (no rebuild).
    std::uint64_t refreshes = 0;
    std::uint64_t evictions = 0;      ///< entries dropped for the budget
    std::uint64_t invalidations = 0;  ///< entries dropped as version-stale
    /// Builds enqueued onto the background runner by GetOrBuildAsync.
    std::uint64_t background_builds = 0;
    /// Async lookups answered "build in flight" (the caller served the
    /// query through the brute-force fallback instead of blocking).
    std::uint64_t async_fallbacks = 0;
    /// Lookups served by deserializing a persisted image (no rebuild).
    std::uint64_t disk_loads = 0;
    /// Successful write-throughs of built/refreshed indexes to disk.
    std::uint64_t disk_writes = 0;
    /// Persisted images rejected at load time: identity/stamp/content
    /// mismatch against the live table, or a truncated/corrupt file.
    std::uint64_t disk_rejects = 0;
    /// Persisted images deleted by GC: a destructive table change proved
    /// the image permanently stale, or the size-budget sweep reclaimed
    /// the oldest images to fit persist_budget_bytes.
    std::uint64_t disk_gc = 0;
    /// Write-through attempts retried after a transient failure (each
    /// backed off exponentially; an image that exhausts its attempts is
    /// simply not persisted — resident serving is unaffected).
    std::uint64_t disk_retries = 0;
    std::size_t resident_count = 0;
    std::size_t resident_bytes = 0;
    /// Distinct keys ever looked up (GetOrBuild/GetOrBuildAsync).
    /// hits+misses over this is the manager's measured lookups-per-key
    /// reuse rate — what the knob tuner refits index_reuse_horizon from.
    std::size_t distinct_lookup_keys = 0;
  };

  IndexManager(const Catalog* catalog, const ModelRegistry* models,
               IndexManagerOptions options = {});

  /// Returns the shared index for `key`, building it if absent or stale.
  /// Stale-by-append entries refresh incrementally; cold lookups try the
  /// persisted on-disk image before paying a build. Concurrent callers
  /// with the same key wait for a single build. Errors (missing
  /// table/model, non-string column, failed build) are returned to every
  /// waiter and nothing is cached. When `built_version` is non-null it
  /// receives the catalog version stamp the returned index was built
  /// against — callers pairing the index with their own table snapshot
  /// compare stamps (not just row counts) to rule out a same-cardinality
  /// table replacement racing the lookup.
  Result<std::shared_ptr<const VectorIndex>> GetOrBuild(
      const IndexKey& key, std::uint64_t* built_version = nullptr);

  /// Outcome of a non-blocking lookup: either a ready index (with the
  /// catalog version it was built against) or "a build is in flight" —
  /// never both, never a wait.
  struct AsyncIndex {
    std::shared_ptr<const VectorIndex> index;  ///< null while building
    std::uint64_t built_version = 0;
    bool build_in_flight = false;
  };

  /// Non-blocking variant of GetOrBuild for the serving path. A fresh
  /// resident entry returns immediately (a hit, same as GetOrBuild). On
  /// a miss with async builds enabled, the build — or the incremental
  /// refresh, when the staleness is append-only — is enqueued once on
  /// the background runner (single-flight: concurrent misses and lookups
  /// of a building key all get build_in_flight) — lowering then emits
  /// the brute-force fallback, so a cold semantic query never blocks
  /// behind index construction. A cold key with a persisted on-disk
  /// image loads synchronously instead (deserialization is orders of
  /// magnitude cheaper than a build), so the first query after a restart
  /// is index-backed. Without a background runner (or with
  /// options().async_builds off) this behaves exactly like GetOrBuild,
  /// including blocking on another caller's in-flight single-flight
  /// build.
  Result<AsyncIndex> GetOrBuildAsync(const IndexKey& key);

  /// Wires the executor background builds run on — the engine passes a
  /// QueryScheduler group admitted at QueryPriority::kBackground, so
  /// builds only consume pool cycles the query stream leaves idle. Call
  /// before serving; the runner must outlive the manager's last build.
  void EnableAsyncBuilds(TaskRunner* background_runner);

  /// True when a fresh (current-version) index for `key` is resident —
  /// the optimizer's amortization signal: a resident index makes the
  /// index-backed strategy's build cost zero.
  bool IsResident(const IndexKey& key) const;

  /// Four-state amortization signal for the optimizer: resident, build
  /// in flight (sunk cost), persisted on disk (load cost ≪ rebuild
  /// cost), or absent. The on-disk probe is intentionally cheap — image
  /// identity and row count only; the full content-hash validation runs
  /// at load time, falling back to a rebuild on mismatch (costing is
  /// advisory, correctness never depends on it).
  IndexResidency Residency(const IndexKey& key) const;

  /// Blocks until no build (background or single-flight synchronous) is
  /// in flight. Test/shutdown aid; new builds may start afterwards.
  void WaitForBuilds();

  /// Drops every entry built over `table` (any column/model/kind), along
  /// with their persisted images — an explicit destructive signal.
  void InvalidateTable(const std::string& table);

  /// Drops every resident entry. Persisted on-disk images are kept: they
  /// are the warm-start source, and stale ones are rejected at load.
  void Clear();

  Stats stats() const;
  const IndexManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const VectorIndex> index;  ///< null while building
    std::uint64_t table_version = 0;
    std::size_t bytes = 0;
    std::uint64_t lru_tick = 0;
    bool building = false;
    Status build_status;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Identity card of one persisted image, cached so Residency() and
  /// warm-start probes never re-read headers. Populated by the startup
  /// directory scan and by write-throughs.
  struct PersistedMeta {
    std::string path;
    std::uint64_t catalog_stamp = 0;
    std::uint64_t content_hash = 0;
    std::uint64_t rows = 0;
    /// True when catalog_stamp came from THIS process (a write-through
    /// or an adoption), false for stamps read off disk at scan time.
    /// Catalog stamps are process-local counters, so only local stamps
    /// may ever be compared against live catalog versions — a scanned
    /// stamp from a previous run is just provenance.
    bool stamp_local = false;
    /// On-disk footprint and age, for the size-budget GC sweep (oldest
    /// modification time reclaimed first). Filled by the startup scan
    /// and refreshed on every write-through.
    std::uint64_t bytes = 0;
    std::int64_t mtime_ns = 0;
  };

  /// How a finished index reached its entry; selects the stats counter
  /// and whether a write-through is warranted.
  enum class InstallSource { kBuild, kRefresh, kDiskLoad };

  /// Embeds the key's column and constructs+builds the index (no locks).
  /// `serial` forces a pool-free build: background builds run *on* a
  /// worker thread, and a task that fanned out and waited on the pool
  /// would break the workers-never-block invariant (deadlock on small
  /// pools). `content_hash` receives the indexed column's content hash.
  Result<std::shared_ptr<const VectorIndex>> BuildIndex(
      const IndexKey& key, std::uint64_t* table_version,
      std::uint64_t* content_hash, bool serial = false) const;

  /// Incremental renewal of a stale-by-append entry (no locks): clones
  /// `old_index`, embeds the rows appended since `old_version`, inserts
  /// them, and returns the refreshed instance stamped with the append
  /// chain's head version. Fails (caller then rebuilds) when the chain
  /// broke or the clone does not line up with the prefix.
  Result<std::shared_ptr<const VectorIndex>> RefreshIndex(
      const IndexKey& key,
      const std::shared_ptr<const VectorIndex>& old_index,
      std::uint64_t old_version, std::uint64_t* new_version,
      std::uint64_t* content_hash) const;

  /// Deserializes the persisted image for `key` and validates it against
  /// the *live* table (identity, row count, content hash) — a mismatch
  /// or short file is an error, never a stale index (no locks).
  Result<std::shared_ptr<const VectorIndex>> LoadFromDisk(
      const IndexKey& key, std::uint64_t* table_version,
      std::uint64_t* content_hash) const;

  /// Installs a finished build/refresh/load into `entry` (or removes the
  /// entry on failure) and wakes waiters. Recomputes the entry's byte
  /// footprint from the installed index — entries grow across refreshes,
  /// so bytes are never trusted from a previous install. Caller holds
  /// mu_.
  void FinishInstallLocked(const IndexKey& key, const EntryPtr& entry,
                           Result<std::shared_ptr<const VectorIndex>>&& built,
                           std::uint64_t version, std::uint64_t* built_version,
                           InstallSource source) CRE_REQUIRES(mu_);

  /// Write-through of a ready index image (tmp + atomic rename), with
  /// bounded retry + exponential backoff on transient failures, then
  /// records it in persisted_. No-op when persist_dir is empty. No locks
  /// held during file IO.
  void PersistToDisk(const IndexKey& key,
                     const std::shared_ptr<const VectorIndex>& index,
                     std::uint64_t catalog_stamp, std::uint64_t content_hash);

  /// One write-through attempt (the body PersistToDisk retries around).
  /// Returns OK on publish AND on deliberate discard (a newer image beat
  /// us); errors are transient I/O failures worth retrying.
  Status PersistToDiskOnce(const IndexKey& key,
                           const std::shared_ptr<const VectorIndex>& index,
                           std::uint64_t catalog_stamp,
                           std::uint64_t content_hash);

  /// Queues PersistToDisk on the background runner when one is wired
  /// (write-through off the query's latency), falling back to inline.
  /// The pending write counts in builds_in_flight_ so WaitForBuilds
  /// covers it — nothing may touch the manager after the count drops.
  void SchedulePersist(const IndexKey& key,
                       std::shared_ptr<const VectorIndex> index,
                       std::uint64_t catalog_stamp,
                       std::uint64_t content_hash);

  /// Scans persist_dir for image headers at construction. Unreadable or
  /// foreign files are ignored.
  void ScanPersistDir();

  /// Forgets (and deletes) a rejected/stale persisted image.
  void DropPersisted(const IndexKey& key);

  /// Reclaims the oldest persisted images (by modification time) until
  /// the on-disk footprint fits persist_budget_bytes, never touching
  /// `just_written`. Victim paths go into `doomed` for the caller to
  /// unlink after releasing mu_ (file IO never runs under the manager
  /// lock). No-op when the budget is 0. Caller holds mu_.
  void SweepPersistBudgetLocked(const IndexKey& just_written,
                                std::vector<std::string>* doomed)
      CRE_REQUIRES(mu_);

  bool HasPersistedLocked(const IndexKey& key) const CRE_REQUIRES(mu_) {
    return persisted_.find(key) != persisted_.end();
  }

  /// Cost-based refresh-vs-rebuild decision over a verified append
  /// chain: refresh while appended * refresh_cost_per_row <=
  /// total * rebuild_cost_per_row (see IndexManagerOptions). Every
  /// refresh branch (sync, async, Residency's advertisement) runs the
  /// same predicate so the optimizer's kRefreshable signal and the
  /// manager's actual behavior never disagree.
  bool RefreshIsCheaper(const Catalog::AppendChain& chain) const;

  /// Cheap plausibility of the persisted image against the live table
  /// (identity known, row counts agree) — the same probe Residency uses.
  /// Gates the async path's synchronous warm start: a stale image must
  /// not lure a serving-path lookup into a blocking rebuild. Caller
  /// holds mu_.
  bool PersistedPlausibleLocked(const IndexKey& key) const CRE_REQUIRES(mu_);

  std::string PersistPathFor(const IndexKey& key) const;

  /// Debug-mode invariant: resident_bytes_ equals the sum of every
  /// entry's recorded bytes (placeholders count 0). Catches the class of
  /// accounting drift where an entry's footprint changes without the
  /// aggregate following. Caller holds mu_. No-op in release builds.
  void CheckAccountingLocked() const CRE_REQUIRES(mu_);

  /// Evicts least-recently-used ready entries (never `keep`) until the
  /// budget holds. Caller holds mu_.
  void EvictForBudgetLocked(const Entry* keep) CRE_REQUIRES(mu_);

  const Catalog* catalog_;
  const ModelRegistry* models_;
  IndexManagerOptions options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<IndexKey, EntryPtr, IndexKeyHash> entries_
      CRE_GUARDED_BY(mu_);
  std::unordered_map<IndexKey, PersistedMeta, IndexKeyHash> persisted_
      CRE_GUARDED_BY(mu_);
  std::uint64_t tick_ CRE_GUARDED_BY(mu_) = 0;
  std::size_t resident_bytes_ CRE_GUARDED_BY(mu_) = 0;
  std::size_t builds_in_flight_ CRE_GUARDED_BY(mu_) = 0;
  TaskRunner* background_runner_ CRE_GUARDED_BY(mu_) = nullptr;
  Stats counters_ CRE_GUARDED_BY(mu_);
  /// Every key ever looked up, for Stats::distinct_lookup_keys.
  std::unordered_set<IndexKey, IndexKeyHash> lookup_keys_
      CRE_GUARDED_BY(mu_);
};

}  // namespace cre

#endif  // CRE_INDEX_INDEX_MANAGER_H_
