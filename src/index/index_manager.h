#ifndef CRE_INDEX_INDEX_MANAGER_H_
#define CRE_INDEX_INDEX_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hash.h"
#include "core/result.h"
#include "embed/model_registry.h"
#include "semantic/semantic_join.h"
#include "storage/catalog.h"
#include "vecsim/vector_index.h"

namespace cre {

/// Identity of one persistent vector index: the embeddings of one string
/// column of one catalog table under one representation model, organized
/// as one physical index family. Two queries that agree on all four share
/// the same index instance.
struct IndexKey {
  std::string table;
  std::string column;
  std::string model;
  SemanticJoinStrategy kind = SemanticJoinStrategy::kHnsw;

  bool operator==(const IndexKey& o) const {
    return kind == o.kind && table == o.table && column == o.column &&
           model == o.model;
  }
  std::string ToString() const;
};

struct IndexKeyHash {
  std::size_t operator()(const IndexKey& k) const;
};

struct IndexManagerOptions {
  /// Master switch: when false the engine never consults the manager and
  /// semantic operators build per-execution indexes as before.
  bool enabled = true;
  /// Asynchronous builds: when true (and the engine has wired a
  /// background runner), a cold GetOrBuildAsync lookup enqueues the build
  /// as a background-priority task and returns immediately so the
  /// requesting query is served by the brute-force path — the cold-build
  /// latency is hidden from the query stream entirely. When false,
  /// GetOrBuildAsync degrades to the blocking GetOrBuild.
  bool async_builds = false;
  /// Total bytes of resident indexes before LRU eviction kicks in. The
  /// most recently built index is never evicted by its own insertion.
  std::size_t memory_budget_bytes = 256ull << 20;
  /// Build parameters for the index families the manager constructs.
  LshOptions lsh;
  IvfOptions ivf;
  HnswOptions hnsw;
};

/// The engine's persistent vector-index subsystem (paper Sec. V: "index
/// structures for expediting similarity and top-k searches" as first-class,
/// optimizer-visible state). Owns every cached VectorIndex, keyed by
/// IndexKey, and provides:
///
///  - cross-query reuse: GetOrBuild returns a shared, immutable index;
///    repeated queries over the same (table, column, model, kind) pay the
///    embedding + build cost once;
///  - versioned invalidation: each entry records the Catalog version stamp
///    of its base table at build time; a Register/Put/Drop of that table
///    makes the entry stale and the next lookup rebuilds;
///  - a memory budget with LRU eviction over ready entries;
///  - thread-safe concurrent access with single-flight builds: concurrent
///    queries needing the same absent index block on one build instead of
///    duplicating it.
///
/// Returned indexes are immutable and safe to probe from any thread; they
/// stay alive (shared_ptr) even if evicted or invalidated mid-query.
class IndexManager {
 public:
  struct Stats {
    std::uint64_t hits = 0;           ///< lookups served by a fresh entry
    std::uint64_t misses = 0;         ///< lookups that required a build
    std::uint64_t builds = 0;         ///< successful index constructions
    std::uint64_t build_failures = 0;
    std::uint64_t evictions = 0;      ///< entries dropped for the budget
    std::uint64_t invalidations = 0;  ///< entries dropped as version-stale
    /// Builds enqueued onto the background runner by GetOrBuildAsync.
    std::uint64_t background_builds = 0;
    /// Async lookups answered "build in flight" (the caller served the
    /// query through the brute-force fallback instead of blocking).
    std::uint64_t async_fallbacks = 0;
    std::size_t resident_count = 0;
    std::size_t resident_bytes = 0;
  };

  IndexManager(const Catalog* catalog, const ModelRegistry* models,
               IndexManagerOptions options = {});

  /// Returns the shared index for `key`, building it if absent or stale.
  /// Concurrent callers with the same key wait for a single build. Errors
  /// (missing table/model, non-string column, failed build) are returned
  /// to every waiter and nothing is cached. When `built_version` is
  /// non-null it receives the catalog version stamp the returned index
  /// was built against — callers pairing the index with their own table
  /// snapshot compare stamps (not just row counts) to rule out a
  /// same-cardinality table replacement racing the lookup.
  Result<std::shared_ptr<const VectorIndex>> GetOrBuild(
      const IndexKey& key, std::uint64_t* built_version = nullptr);

  /// Outcome of a non-blocking lookup: either a ready index (with the
  /// catalog version it was built against) or "a build is in flight" —
  /// never both, never a wait.
  struct AsyncIndex {
    std::shared_ptr<const VectorIndex> index;  ///< null while building
    std::uint64_t built_version = 0;
    bool build_in_flight = false;
  };

  /// Non-blocking variant of GetOrBuild for the serving path. A fresh
  /// resident entry returns immediately (a hit, same as GetOrBuild). On
  /// a miss with async builds enabled, the build is enqueued once on the
  /// background runner (single-flight: concurrent misses and lookups of
  /// a building key all get build_in_flight) — lowering then emits the
  /// brute-force fallback, so a cold semantic query never blocks behind
  /// index construction. Without a background runner (or with
  /// options().async_builds off) this behaves exactly like GetOrBuild,
  /// including blocking on another caller's in-flight single-flight
  /// build.
  Result<AsyncIndex> GetOrBuildAsync(const IndexKey& key);

  /// Wires the executor background builds run on — the engine passes a
  /// QueryScheduler group admitted at QueryPriority::kBackground, so
  /// builds only consume pool cycles the query stream leaves idle. Call
  /// before serving; the runner must outlive the manager's last build.
  void EnableAsyncBuilds(TaskRunner* background_runner);

  /// True when a fresh (current-version) index for `key` is resident —
  /// the optimizer's amortization signal: a resident index makes the
  /// index-backed strategy's build cost zero.
  bool IsResident(const IndexKey& key) const;

  /// Three-state amortization signal for the optimizer: resident, build
  /// in flight (sunk cost), or absent.
  IndexResidency Residency(const IndexKey& key) const;

  /// Blocks until no build (background or single-flight synchronous) is
  /// in flight. Test/shutdown aid; new builds may start afterwards.
  void WaitForBuilds();

  /// Drops every entry built over `table` (any column/model/kind).
  void InvalidateTable(const std::string& table);

  /// Drops everything.
  void Clear();

  Stats stats() const;
  const IndexManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const VectorIndex> index;  ///< null while building
    std::uint64_t table_version = 0;
    std::size_t bytes = 0;
    std::uint64_t lru_tick = 0;
    bool building = false;
    Status build_status;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Embeds the key's column and constructs+builds the index (no locks).
  /// `serial` forces a pool-free build: background builds run *on* a
  /// worker thread, and a task that fanned out and waited on the pool
  /// would break the workers-never-block invariant (deadlock on small
  /// pools).
  Result<std::shared_ptr<const VectorIndex>> BuildIndex(
      const IndexKey& key, std::uint64_t* table_version,
      bool serial = false) const;

  /// Installs a finished build into `entry` (or removes the placeholder
  /// on failure) and wakes waiters. Caller holds mu_.
  void FinishBuildLocked(const IndexKey& key, const EntryPtr& entry,
                         Result<std::shared_ptr<const VectorIndex>>&& built,
                         std::uint64_t version,
                         std::uint64_t* built_version);

  /// Evicts least-recently-used ready entries (never `keep`) until the
  /// budget holds. Caller holds mu_.
  void EvictForBudgetLocked(const Entry* keep);

  const Catalog* catalog_;
  const ModelRegistry* models_;
  IndexManagerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<IndexKey, EntryPtr, IndexKeyHash> entries_;
  std::uint64_t tick_ = 0;
  std::size_t resident_bytes_ = 0;
  std::size_t builds_in_flight_ = 0;
  TaskRunner* background_runner_ = nullptr;
  Stats counters_;
};

}  // namespace cre

#endif  // CRE_INDEX_INDEX_MANAGER_H_
