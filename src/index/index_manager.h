#ifndef CRE_INDEX_INDEX_MANAGER_H_
#define CRE_INDEX_INDEX_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hash.h"
#include "core/result.h"
#include "embed/model_registry.h"
#include "semantic/semantic_join.h"
#include "storage/catalog.h"
#include "vecsim/vector_index.h"

namespace cre {

/// Identity of one persistent vector index: the embeddings of one string
/// column of one catalog table under one representation model, organized
/// as one physical index family. Two queries that agree on all four share
/// the same index instance.
struct IndexKey {
  std::string table;
  std::string column;
  std::string model;
  SemanticJoinStrategy kind = SemanticJoinStrategy::kHnsw;

  bool operator==(const IndexKey& o) const {
    return kind == o.kind && table == o.table && column == o.column &&
           model == o.model;
  }
  std::string ToString() const;
};

struct IndexKeyHash {
  std::size_t operator()(const IndexKey& k) const;
};

struct IndexManagerOptions {
  /// Master switch: when false the engine never consults the manager and
  /// semantic operators build per-execution indexes as before.
  bool enabled = true;
  /// Total bytes of resident indexes before LRU eviction kicks in. The
  /// most recently built index is never evicted by its own insertion.
  std::size_t memory_budget_bytes = 256ull << 20;
  /// Build parameters for the index families the manager constructs.
  LshOptions lsh;
  IvfOptions ivf;
  HnswOptions hnsw;
};

/// The engine's persistent vector-index subsystem (paper Sec. V: "index
/// structures for expediting similarity and top-k searches" as first-class,
/// optimizer-visible state). Owns every cached VectorIndex, keyed by
/// IndexKey, and provides:
///
///  - cross-query reuse: GetOrBuild returns a shared, immutable index;
///    repeated queries over the same (table, column, model, kind) pay the
///    embedding + build cost once;
///  - versioned invalidation: each entry records the Catalog version stamp
///    of its base table at build time; a Register/Put/Drop of that table
///    makes the entry stale and the next lookup rebuilds;
///  - a memory budget with LRU eviction over ready entries;
///  - thread-safe concurrent access with single-flight builds: concurrent
///    queries needing the same absent index block on one build instead of
///    duplicating it.
///
/// Returned indexes are immutable and safe to probe from any thread; they
/// stay alive (shared_ptr) even if evicted or invalidated mid-query.
class IndexManager {
 public:
  struct Stats {
    std::uint64_t hits = 0;           ///< lookups served by a fresh entry
    std::uint64_t misses = 0;         ///< lookups that required a build
    std::uint64_t builds = 0;         ///< successful index constructions
    std::uint64_t build_failures = 0;
    std::uint64_t evictions = 0;      ///< entries dropped for the budget
    std::uint64_t invalidations = 0;  ///< entries dropped as version-stale
    std::size_t resident_count = 0;
    std::size_t resident_bytes = 0;
  };

  IndexManager(const Catalog* catalog, const ModelRegistry* models,
               IndexManagerOptions options = {});

  /// Returns the shared index for `key`, building it if absent or stale.
  /// Concurrent callers with the same key wait for a single build. Errors
  /// (missing table/model, non-string column, failed build) are returned
  /// to every waiter and nothing is cached. When `built_version` is
  /// non-null it receives the catalog version stamp the returned index
  /// was built against — callers pairing the index with their own table
  /// snapshot compare stamps (not just row counts) to rule out a
  /// same-cardinality table replacement racing the lookup.
  Result<std::shared_ptr<const VectorIndex>> GetOrBuild(
      const IndexKey& key, std::uint64_t* built_version = nullptr);

  /// True when a fresh (current-version) index for `key` is resident —
  /// the optimizer's amortization signal: a resident index makes the
  /// index-backed strategy's build cost zero.
  bool IsResident(const IndexKey& key) const;

  /// Drops every entry built over `table` (any column/model/kind).
  void InvalidateTable(const std::string& table);

  /// Drops everything.
  void Clear();

  Stats stats() const;
  const IndexManagerOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const VectorIndex> index;  ///< null while building
    std::uint64_t table_version = 0;
    std::size_t bytes = 0;
    std::uint64_t lru_tick = 0;
    bool building = false;
    Status build_status;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Embeds the key's column and constructs+builds the index (no locks).
  Result<std::shared_ptr<const VectorIndex>> BuildIndex(
      const IndexKey& key, std::uint64_t* table_version) const;

  /// Evicts least-recently-used ready entries (never `keep`) until the
  /// budget holds. Caller holds mu_.
  void EvictForBudgetLocked(const Entry* keep);

  const Catalog* catalog_;
  const ModelRegistry* models_;
  IndexManagerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<IndexKey, EntryPtr, IndexKeyHash> entries_;
  std::uint64_t tick_ = 0;
  std::size_t resident_bytes_ = 0;
  Stats counters_;
};

}  // namespace cre

#endif  // CRE_INDEX_INDEX_MANAGER_H_
