#ifndef CRE_CORE_RNG_H_
#define CRE_CORE_RNG_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cre {

/// Deterministic, fast PRNG (splitmix64 seeded xoshiro256**). Used for all
/// synthetic data generation so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t Uniform(std::uint64_t bound) {
    return bound ? Next() % bound : 0;
  }

  /// Uniform in [lo, hi].
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float NextFloat() { return static_cast<float>(NextDouble()); }

  /// Standard normal via Box-Muller (one value per call; no caching).
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

inline double Rng::NextGaussian() {
  // Box-Muller; avoid log(0) by offsetting the uniform draw.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  constexpr double kTwoPi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

/// Zipfian distribution over [0, n) with exponent `s` (default 1.0).
/// Precomputes the harmonic CDF for O(log n) sampling.
class Zipf {
 public:
  Zipf(std::size_t n, double s = 1.0);

  /// Draws one rank in [0, n); rank 0 is the most frequent.
  std::size_t Sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

inline Zipf::Zipf(std::size_t n, double s) {
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (std::size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

inline std::size_t Zipf::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  std::size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace cre

#endif  // CRE_CORE_RNG_H_
