#include "core/status.h"

#include <cstdio>
#include <cstdlib>

namespace cre {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Check() const {
  if (ok()) return;
  std::fprintf(stderr, "Status check failed: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace cre
