#ifndef CRE_CORE_CANCEL_H_
#define CRE_CORE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "core/status.h"

namespace cre {

/// Why a cancellation token was tripped. Hot poll sites only look at the
/// boolean; the cause is read once at the engine boundary to pick between
/// kCancelled and kDeadlineExceeded.
enum class StopCause : int {
  kNone = 0,
  kCancelled = 1,
  kDeadline = 2,
};

/// Shared cooperative-cancellation token, optionally armed with a deadline.
/// The caller keeps one handle and may flip it from any thread; a query's
/// drivers poll it at morsel and segment boundaries and unwind with
/// Status::Cancelled. Cancellation is cooperative — in-flight batches
/// finish, then the query stops claiming work. Lives in core so the
/// exec-layer morsel scheduler can poll it without depending on the
/// engine's QueryContext.
///
/// Deadlines: SetDeadline() arms the token; the engine's reaper thread
/// calls ExpireDeadline() when the wall clock passes it, which trips the
/// same atomic bool every existing poll site already watches — deep loops
/// (HNSW build, IVF scans, k-means) enforce timeouts without ever touching
/// a clock. CheckStop() additionally compares the clock directly, so
/// driver-level polls catch pre-expired deadlines even before the reaper
/// runs.
class CancelFlag {
 public:
  void Cancel() {
    // First cause wins; a deadline expiry racing a user cancel keeps
    // whichever landed first.
    int expected = static_cast<int>(StopCause::kNone);
    cause_.compare_exchange_strong(expected,
                                   static_cast<int>(StopCause::kCancelled),
                                   std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Arms (or re-arms) the deadline, given as nanoseconds on the
  /// steady_clock epoch. 0 means "no deadline".
  void SetDeadline(std::int64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }

  /// Convenience: arm the deadline `timeout_seconds` from now.
  void SetTimeout(double timeout_seconds) {
    SetDeadline(NowNs() + static_cast<std::int64_t>(timeout_seconds * 1e9));
  }

  std::int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }

  /// Trips the token because the deadline passed. Called by the reaper
  /// (or by CheckStop on a precise poll).
  void ExpireDeadline() {
    int expected = static_cast<int>(StopCause::kNone);
    cause_.compare_exchange_strong(expected,
                                   static_cast<int>(StopCause::kDeadline),
                                   std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  StopCause cause() const {
    return static_cast<StopCause>(cause_.load(std::memory_order_relaxed));
  }

  bool deadline_exceeded() const {
    return cancelled() && cause() == StopCause::kDeadline;
  }

  /// Seconds until the deadline (negative if already past); returns +inf
  /// semantics via a large positive value when no deadline is armed.
  double SlackSeconds() const {
    std::int64_t d = deadline_ns();
    if (d == 0) return 1e18;
    return static_cast<double>(d - NowNs()) * 1e-9;
  }

  /// Precise poll: checks the flag AND the clock. Returns OK, or the
  /// status a query should unwind with. Driver-level call sites use this;
  /// deep loops keep polling cancelled() (one atomic load).
  Status CheckStop() {
    if (!cancelled()) {
      std::int64_t d = deadline_ns();
      if (d != 0 && NowNs() >= d) ExpireDeadline();
    }
    if (!cancelled()) return Status::OK();
    if (cause() == StopCause::kDeadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Cancelled("query cancelled by caller");
  }

  static std::int64_t NowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int> cause_{static_cast<int>(StopCause::kNone)};
  std::atomic<std::int64_t> deadline_ns_{0};
};

using CancelFlagPtr = std::shared_ptr<CancelFlag>;

}  // namespace cre

#endif  // CRE_CORE_CANCEL_H_
