#ifndef CRE_CORE_CANCEL_H_
#define CRE_CORE_CANCEL_H_

#include <atomic>
#include <memory>

namespace cre {

/// Shared cooperative-cancellation flag. The caller keeps one handle and
/// may flip it from any thread; a query's drivers poll it at morsel and
/// segment boundaries and unwind with Status::Cancelled. Cancellation is
/// cooperative — in-flight batches finish, then the query stops claiming
/// work. Lives in core so the exec-layer morsel scheduler can poll it
/// without depending on the engine's QueryContext.
class CancelFlag {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancelFlagPtr = std::shared_ptr<CancelFlag>;

}  // namespace cre

#endif  // CRE_CORE_CANCEL_H_
