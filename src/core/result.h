#ifndef CRE_CORE_RESULT_H_
#define CRE_CORE_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "core/status.h"

namespace cre {

/// Holds either a value of type T or an error Status. The engine's public
/// APIs return Result<T> instead of throwing exceptions. [[nodiscard]]: a
/// dropped Result is a dropped error — see the note on Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit conversion from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit conversion from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  /// Returns the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfError();
    return *value_;
  }
  T ValueOrDie() && {
    DieIfError();
    return std::move(*value_);
  }

  /// Returns the contained value without checking. Only for use directly
  /// after an ok() check (e.g. in CRE_ASSIGN_OR_RETURN).
  T ValueUnsafe() && { return std::move(*value_); }
  const T& ValueUnsafe() const& { return *value_; }

  /// Returns the value or `alternative` when this holds an error.
  T ValueOr(T alternative) const& {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace cre

#endif  // CRE_CORE_RESULT_H_
