#ifndef CRE_CORE_LOGGING_H_
#define CRE_CORE_LOGGING_H_

#include <sstream>
#include <string>

namespace cre {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log emitter: destructor writes one line to stderr.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define CRE_LOG(level)                                             \
  ::cre::internal::LogMessage(::cre::LogLevel::k##level, __FILE__, \
                              __LINE__)

/// Internal invariant check that aborts on failure (active in all builds).
#define CRE_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      CRE_LOG(Error) << "CHECK failed: " #cond;                           \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define CRE_DCHECK(cond) CRE_CHECK(cond)

}  // namespace cre

#endif  // CRE_CORE_LOGGING_H_
