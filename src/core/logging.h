#ifndef CRE_CORE_LOGGING_H_
#define CRE_CORE_LOGGING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace cre {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Destination for formatted log lines (without trailing newline). The
/// default sink writes to stderr. Passing an empty function restores the
/// default. The sink may be called concurrently from any thread.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

/// One key=value field of a structured log event. Values that contain
/// spaces, quotes, or '=' are rendered double-quoted with escapes.
struct LogField {
  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  LogField(std::string k, double v);
  LogField(std::string k, std::int64_t v);
  LogField(std::string k, std::uint64_t v);
  LogField(std::string k, int v);
  LogField(std::string k, bool v);

  std::string key;
  std::string value;
};

/// Emits one structured line: `event=<event> key=value key2="two words"`.
/// Query-scoped events carry a query_id field first, so log lines from
/// concurrent queries can be correlated:
///   LogStructured(LogLevel::kWarning, "slow_query",
///                 {{"query_id", id}, {"seconds", secs}});
void LogStructured(LogLevel level, const std::string& event,
                   const std::vector<LogField>& fields);

/// Test helper: installs a capturing sink on construction and restores
/// the previous behavior on destruction. Captured lines are the full
/// formatted messages (prefix included for CRE_LOG, `event=...` form for
/// LogStructured).
class ScopedLogCapture {
 public:
  ScopedLogCapture();
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

  std::vector<std::string> lines() const;
  /// True if any captured line contains `needle`.
  bool Contains(const std::string& needle) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

namespace internal {

/// Stream-style log emitter: destructor hands one line to the sink.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define CRE_LOG(level)                                             \
  ::cre::internal::LogMessage(::cre::LogLevel::k##level, __FILE__, \
                              __LINE__)

/// Internal invariant check that aborts on failure (active in all builds).
#define CRE_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      CRE_LOG(Error) << "CHECK failed: " #cond;                           \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define CRE_DCHECK(cond) CRE_CHECK(cond)

}  // namespace cre

#endif  // CRE_CORE_LOGGING_H_
