#include "core/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cre {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

// Sink state: guarded by g_sink_mu; g_has_custom_sink lets the hot path
// skip the lock entirely while the default stderr sink is installed.
std::mutex g_sink_mu;
std::atomic<bool> g_has_custom_sink{false};
LogSink& CustomSink() {
  static LogSink* sink = new LogSink();  // leaked: safe at exit
  return *sink;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void Emit(LogLevel level, const std::string& line) {
  if (g_has_custom_sink.load(std::memory_order_acquire)) {
    LogSink sink;
    {
      std::lock_guard<std::mutex> lock(g_sink_mu);
      sink = CustomSink();
    }
    if (sink) {
      sink(level, line);
      return;
    }
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

bool NeedsQuoting(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t') return true;
  }
  return false;
}

void AppendFieldValue(const std::string& v, std::string* out) {
  if (!NeedsQuoting(v)) {
    *out += v;
    return;
  }
  *out += '"';
  for (char c : v) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        *out += c;
    }
  }
  *out += '"';
}

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  CustomSink() = std::move(sink);
  g_has_custom_sink.store(static_cast<bool>(CustomSink()),
                          std::memory_order_release);
}

LogField::LogField(std::string k, double v)
    : key(std::move(k)), value(FormatNumber(v)) {}
LogField::LogField(std::string k, std::int64_t v)
    : key(std::move(k)), value(std::to_string(v)) {}
LogField::LogField(std::string k, std::uint64_t v)
    : key(std::move(k)), value(std::to_string(v)) {}
LogField::LogField(std::string k, int v)
    : key(std::move(k)), value(std::to_string(v)) {}
LogField::LogField(std::string k, bool v)
    : key(std::move(k)), value(v ? "true" : "false") {}

void LogStructured(LogLevel level, const std::string& event,
                   const std::vector<LogField>& fields) {
  if (static_cast<int>(level) < g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::string line = "event=";
  AppendFieldValue(event, &line);
  for (const auto& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    AppendFieldValue(f.value, &line);
  }
  Emit(level, line);
}

struct ScopedLogCapture::State {
  mutable std::mutex mu;
  std::vector<std::string> lines;
};

ScopedLogCapture::ScopedLogCapture() : state_(std::make_shared<State>()) {
  auto state = state_;
  SetLogSink([state](LogLevel, const std::string& line) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->lines.push_back(line);
  });
}

ScopedLogCapture::~ScopedLogCapture() { SetLogSink(LogSink()); }

std::vector<std::string> ScopedLogCapture::lines() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->lines;
}

bool ScopedLogCapture::Contains(const std::string& needle) const {
  std::lock_guard<std::mutex> lock(state_->mu);
  for (const auto& line : state_->lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    Emit(level_, stream_.str());
  }
}

}  // namespace internal

}  // namespace cre
