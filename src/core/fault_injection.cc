#include "core/fault_injection.h"

#include <cstdlib>
#include <sstream>

namespace cre {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("CRE_FAULTS");
  if (env != nullptr && env[0] != '\0') ParseEnv(env);
}

const std::vector<std::string>& FaultInjector::SiteCatalogue() {
  // Every CRE_INJECT_FAULT / CRE_RETURN_IF_FAULT site in the engine.
  // Chaos sweeps iterate this list; add new sites here when wiring them.
  static const std::vector<std::string>* kSites = new std::vector<std::string>{
      "persist.open",          // index image tmp-file creation
      "persist.write",         // index image serialization/flush
      "persist.rename",        // atomic tmp -> final rename
      "load.open",             // persisted image open at lookup
      "load.read",             // persisted image parse/validate
      "index.build.embed",     // embed batch during cold index build
      "index.build.construct", // index structure construction
      "index.refresh.append",  // incremental refresh append step
      "embed.query",           // query-side embed batch
      "governor.charge",       // allocation charge points
      "hashjoin.build",        // hash-join build-side materialization
  };
  return *kSites;
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  MutexLock lock(mu_);
  ArmedSite armed;
  armed.spec = std::move(spec);
  sites_[site] = std::move(armed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& site) {
  MutexLock lock(mu_);
  sites_.erase(site);
  if (sites_.empty()) enabled_.store(false, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  sites_.clear();
  fired_.store(0, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t FaultInjector::hits(const std::string& site) const {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

Status FaultInjector::Check(const std::string& site) {
  MutexLock lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  ArmedSite& armed = it->second;
  std::uint64_t hit = armed.hit_count++;
  if (armed.spent) return Status::OK();
  if (hit < armed.spec.after_hits) return Status::OK();
  if (armed.spec.probability < 1.0) {
    // xorshift64*: deterministic per-process sequence, no global RNG.
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    double draw = static_cast<double>((rng_state_ * 2685821657736338717ull) >>
                                      11) /
                  9007199254740992.0;  // 2^53
    if (draw >= armed.spec.probability) return Status::OK();
  }
  if (!armed.spec.persistent) armed.spent = true;
  fired_.fetch_add(1, std::memory_order_relaxed);
  std::string msg = armed.spec.message.empty()
                        ? ("injected fault at " + site)
                        : armed.spec.message;
  return Status(armed.spec.code, std::move(msg));
}

void FaultInjector::ParseEnv(const char* env) {
  std::stringstream entries(env);
  std::string entry;
  while (std::getline(entries, entry, ',')) {
    if (entry.empty()) continue;
    std::stringstream fields(entry);
    std::string site;
    if (!std::getline(fields, site, ':') || site.empty()) continue;
    FaultSpec spec;
    std::string field;
    while (std::getline(fields, field, ':')) {
      if (field.rfind("p=", 0) == 0) {
        spec.probability = std::atof(field.c_str() + 2);
      } else if (field.rfind("n=", 0) == 0) {
        long n = std::atol(field.c_str() + 2);
        spec.after_hits = n > 0 ? static_cast<std::uint64_t>(n - 1) : 0;
      } else if (field == "persistent") {
        spec.persistent = true;
      } else if (field.rfind("code=", 0) == 0) {
        std::string code = field.substr(5);
        if (code == "io") spec.code = StatusCode::kIoError;
        else if (code == "internal") spec.code = StatusCode::kInternal;
        else if (code == "resource") spec.code = StatusCode::kResourceExhausted;
        else if (code == "cancelled") spec.code = StatusCode::kCancelled;
      }
    }
    Arm(site, spec);
  }
}

}  // namespace cre
