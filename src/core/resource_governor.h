#ifndef CRE_CORE_RESOURCE_GOVERNOR_H_
#define CRE_CORE_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"

namespace cre {

/// Limits for the memory accountant. 0 means "unlimited" for either knob,
/// which preserves pre-governor behavior exactly.
struct ResourceGovernorOptions {
  /// Engine-wide ceiling across all concurrent queries' tracked bytes.
  std::size_t engine_memory_bytes = 0;
  /// Default per-query ceiling; QueryOptions::memory_budget_bytes
  /// overrides it per query.
  std::size_t per_query_memory_bytes = 0;
};

/// Engine-wide memory accountant. The big allocators (hash-join build,
/// sort runs, aggregation states, index builds, embed batches) charge
/// estimated bytes *before* allocating; a breach returns
/// kResourceExhausted through the normal Status path so operators unwind
/// cleanly — the engine never relies on std::bad_alloc. Tracking is
/// advisory (estimates, not an allocator hook), which is enough to bound
/// the structures that actually dominate memory.
///
/// Thread-safe; charges are lock-free atomics.
class ResourceGovernor {
 public:
  explicit ResourceGovernor(ResourceGovernorOptions options = {})
      : options_(options) {}

  /// Attempts to charge `bytes` against the engine-wide ceiling. On
  /// breach, rolls the charge back and returns kResourceExhausted naming
  /// `what`.
  Status Charge(std::size_t bytes, const char* what);

  /// Returns bytes previously charged. Never underflows.
  void Release(std::size_t bytes);

  std::size_t charged_bytes() const {
    return charged_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t breaches() const {
    return breaches_.load(std::memory_order_relaxed);
  }
  const ResourceGovernorOptions& options() const { return options_; }

 private:
  ResourceGovernorOptions options_;
  std::atomic<std::size_t> charged_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> breaches_{0};
};

/// Per-query budget layered over the engine-wide governor. Every charge
/// lands on both levels (and rolls back both on breach at either level).
/// Queries release what they charged as operators are destroyed; the
/// destructor releases any remainder so a query that unwinds mid-plan
/// cannot leak charged bytes.
class QueryBudget {
 public:
  /// `governor` may be null (per-query limit still enforced, if any).
  /// `limit_bytes` == 0 means no per-query ceiling.
  QueryBudget(ResourceGovernor* governor, std::size_t limit_bytes)
      : governor_(governor), limit_bytes_(limit_bytes) {}
  ~QueryBudget();

  QueryBudget(const QueryBudget&) = delete;
  QueryBudget& operator=(const QueryBudget&) = delete;

  Status Charge(std::size_t bytes, const char* what);
  void Release(std::size_t bytes);

  std::size_t charged_bytes() const {
    return charged_.load(std::memory_order_relaxed);
  }
  std::size_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::size_t limit_bytes() const { return limit_bytes_; }

 private:
  ResourceGovernor* governor_;
  std::size_t limit_bytes_;
  std::atomic<std::size_t> charged_{0};
  std::atomic<std::size_t> peak_{0};
};

using QueryBudgetPtr = std::shared_ptr<QueryBudget>;

/// RAII holder for a budget charge: releases on destruction. Movable so
/// operators can stash it next to the structure whose bytes it covers.
/// Holds the budget by shared_ptr so a charge pinned inside a shared
/// structure (e.g. a shared hash-join table) can never outlive the
/// budget it charges.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(QueryBudgetPtr budget, std::size_t bytes)
      : budget_(std::move(budget)), bytes_(bytes) {}
  ScopedCharge(ScopedCharge&& other) noexcept
      : budget_(std::move(other.budget_)), bytes_(other.bytes_) {
    other.budget_.reset();
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      Reset();
      budget_ = std::move(other.budget_);
      bytes_ = other.bytes_;
      other.budget_.reset();
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ~ScopedCharge() { Reset(); }

  void Reset() {
    if (budget_ != nullptr && bytes_ != 0) budget_->Release(bytes_);
    budget_.reset();
    bytes_ = 0;
  }

  std::size_t bytes() const { return bytes_; }

 private:
  QueryBudgetPtr budget_;
  std::size_t bytes_ = 0;
};

}  // namespace cre

#endif  // CRE_CORE_RESOURCE_GOVERNOR_H_
