#ifndef CRE_CORE_STATUS_H_
#define CRE_CORE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace cre {

/// Error categories used across the engine. Mirrors the Arrow/RocksDB
/// convention: APIs return Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeError,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
  kAborted,
  kCancelled,
  kDeadlineExceeded,
  kIoError,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no allocation);
/// error states carry a code and a message. [[nodiscard]] on the class makes
/// silently dropping a returned Status a compile warning (an error in CI):
/// handle it, propagate it with CRE_RETURN_NOT_OK, or write `(void)` with a
/// comment saying why dropping is safe.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process if this status is not OK. Use only in tests,
  /// examples, and benches where errors are programming mistakes.
  void Check() const;

 private:
  struct Rep {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status from the current function.
#define CRE_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::cre::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluates an expression returning Result<T>; on success binds the value,
/// on failure propagates the status.
#define CRE_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueUnsafe();

#define CRE_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define CRE_ASSIGN_OR_RETURN_NAME(x, y) CRE_ASSIGN_OR_RETURN_CONCAT(x, y)
#define CRE_ASSIGN_OR_RETURN(lhs, rexpr)                                      \
  CRE_ASSIGN_OR_RETURN_IMPL(CRE_ASSIGN_OR_RETURN_NAME(_res_, __COUNTER__), \
                            lhs, rexpr)

}  // namespace cre

#endif  // CRE_CORE_STATUS_H_
