#ifndef CRE_CORE_MUTEX_H_
#define CRE_CORE_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace cre {

/// Annotated wrapper over std::mutex. Declaring a member `Mutex mu_` (and
/// fields `CRE_GUARDED_BY(mu_)`) lets Clang's thread-safety analysis prove
/// at compile time that every guarded access happens under the lock. The
/// wrapper adds no state and no overhead; off Clang it behaves exactly
/// like std::mutex.
class CRE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CRE_ACQUIRE() { mu_.lock(); }
  void Unlock() CRE_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() CRE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std::condition_variable
  /// (CondVar below). Bypasses the analysis — don't lock it directly.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex (the annotated std::lock_guard/std::unique_lock
/// replacement). Supports mid-scope Unlock()/Lock() cycles — the pattern
/// used by code that drops the lock around expensive work (index builds,
/// plan rebinds, task execution) — with the analysis tracking the
/// capability through each transition.
class CRE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CRE_ACQUIRE(mu) : mu_(&mu), owned_(true) {
    mu_->Lock();
  }
  ~MutexLock() CRE_RELEASE() {
    if (owned_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the lock before scope end (e.g. to run a build outside the
  /// critical section). The destructor then does nothing unless Lock()
  /// re-acquires first.
  void Unlock() CRE_RELEASE() {
    mu_->Unlock();
    owned_ = false;
  }

  /// Re-acquires after Unlock().
  void Lock() CRE_ACQUIRE() {
    mu_->Lock();
    owned_ = true;
  }

  bool owns_lock() const { return owned_; }
  Mutex* mutex() const { return mu_; }

 private:
  Mutex* mu_;
  bool owned_;
};

/// Condition variable paired with Mutex/MutexLock. Wait takes the scoped
/// lock and atomically releases/re-acquires the underlying mutex; callers
/// keep the capability across the call from the analysis' point of view,
/// which is exactly right — the guarded predicate re-check after wakeup
/// happens with the lock held. Waits must be written as explicit
/// while-loops (not lambda predicates) so guarded reads stay inside the
/// annotated caller.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) CRE_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mutex()->native(),
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with `lock`
  }

  /// Returns false on timeout (lock re-held either way).
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout)
      CRE_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mutex()->native(),
                                        std::adopt_lock);
    const bool ok = cv_.wait_for(native, timeout) == std::cv_status::no_timeout;
    native.release();
    return ok;
  }

  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      CRE_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(lock.mutex()->native(),
                                        std::adopt_lock);
    const bool ok =
        cv_.wait_until(native, deadline) == std::cv_status::no_timeout;
    native.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cre

#endif  // CRE_CORE_MUTEX_H_
