#ifndef CRE_CORE_ALIGNED_H_
#define CRE_CORE_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <utility>

namespace cre {

/// Owning, cache/SIMD-aligned flat buffer of trivially-copyable T.
/// Embedding matrices and vector batches use 64-byte alignment so AVX loads
/// never straddle cache lines.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n, std::size_t alignment = 64) {
    Allocate(n, alignment);
  }

  ~AlignedBuffer() { std::free(data_); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  /// (Re)allocates to hold n elements; contents are uninitialized.
  void Allocate(std::size_t n, std::size_t alignment = 64) {
    std::free(data_);
    size_ = n;
    if (n == 0) {
      data_ = nullptr;
      return;
    }
    std::size_t bytes = n * sizeof(T);
    // aligned_alloc requires size to be a multiple of alignment.
    bytes = (bytes + alignment - 1) / alignment * alignment;
    data_ = static_cast<T*>(std::aligned_alloc(alignment, bytes));
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Issues a read prefetch for the cache line containing `p`.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace cre

#endif  // CRE_CORE_ALIGNED_H_
