#include "core/resource_governor.h"

#include <string>

#include "core/fault_injection.h"

namespace cre {
namespace {

std::string BreachMessage(const char* what, std::size_t requested,
                          std::size_t charged, std::size_t limit,
                          const char* scope) {
  std::string msg = "memory budget exceeded (";
  msg += scope;
  msg += ") charging ";
  msg += std::to_string(requested);
  msg += " bytes for ";
  msg += what;
  msg += ": ";
  msg += std::to_string(charged);
  msg += " of ";
  msg += std::to_string(limit);
  msg += " bytes already charged";
  return msg;
}

void UpdatePeak(std::atomic<std::size_t>* peak, std::size_t now) {
  std::size_t prev = peak->load(std::memory_order_relaxed);
  while (now > prev &&
         !peak->compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

}  // namespace

Status ResourceGovernor::Charge(std::size_t bytes, const char* what) {
  if (bytes == 0) return Status::OK();
  CRE_RETURN_IF_FAULT("governor.charge");
  std::size_t prev = charged_.fetch_add(bytes, std::memory_order_relaxed);
  std::size_t now = prev + bytes;
  std::size_t limit = options_.engine_memory_bytes;
  if (limit != 0 && now > limit) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
    breaches_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        BreachMessage(what, bytes, prev, limit, "engine"));
  }
  UpdatePeak(&peak_, now);
  return Status::OK();
}

void ResourceGovernor::Release(std::size_t bytes) {
  if (bytes == 0) return;
  std::size_t prev = charged_.load(std::memory_order_relaxed);
  std::size_t take;
  do {
    take = prev < bytes ? prev : bytes;
  } while (!charged_.compare_exchange_weak(prev, prev - take,
                                           std::memory_order_relaxed));
}

QueryBudget::~QueryBudget() {
  // A query that unwound mid-plan may still hold charges pinned in
  // operator state that was already torn down without releasing; return
  // the remainder to the engine-wide pool.
  std::size_t rest = charged_.load(std::memory_order_relaxed);
  if (rest != 0 && governor_ != nullptr) governor_->Release(rest);
}

Status QueryBudget::Charge(std::size_t bytes, const char* what) {
  if (bytes == 0) return Status::OK();
  if (governor_ == nullptr) {
    // With a governor the engine-wide Charge below probes the fault
    // site; probe here only when that path is skipped.
    CRE_RETURN_IF_FAULT("governor.charge");
  }
  std::size_t prev = charged_.fetch_add(bytes, std::memory_order_relaxed);
  std::size_t now = prev + bytes;
  if (limit_bytes_ != 0 && now > limit_bytes_) {
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        BreachMessage(what, bytes, prev, limit_bytes_, "query"));
  }
  if (governor_ != nullptr) {
    Status st = governor_->Charge(bytes, what);
    if (!st.ok()) {
      charged_.fetch_sub(bytes, std::memory_order_relaxed);
      return st;
    }
  }
  UpdatePeak(&peak_, now);
  return Status::OK();
}

void QueryBudget::Release(std::size_t bytes) {
  if (bytes == 0) return;
  std::size_t prev = charged_.load(std::memory_order_relaxed);
  std::size_t take;
  do {
    take = prev < bytes ? prev : bytes;
  } while (!charged_.compare_exchange_weak(prev, prev - take,
                                           std::memory_order_relaxed));
  if (take != 0 && governor_ != nullptr) governor_->Release(take);
}

}  // namespace cre
