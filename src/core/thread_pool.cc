#include "core/thread_pool.h"

#include <algorithm>

namespace cre {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
    ++outstanding_;
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  // Explicit while-loop (not a lambda predicate): guarded reads stay in
  // this annotated scope.
  while (outstanding_ != 0) done_cv_.Wait(lock);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && tasks_.empty()) task_cv_.Wait(lock);
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--outstanding_ == 0) done_cv_.NotifyAll();
    }
  }
}

void TaskRunner::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_chunk) {
  if (n == 0) return;
  const std::size_t threads = num_threads();
  if (threads <= 1 || n <= min_chunk) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(threads * 4, (n + min_chunk - 1) / min_chunk);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace cre
