#ifndef CRE_CORE_HASH_H_
#define CRE_CORE_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace cre {

/// 64-bit FNV-1a over arbitrary bytes. Stable across platforms; used for
/// dictionary and vocabulary hashing (determinism matters for repro).
inline std::uint64_t Fnv1a64(const void* data, std::size_t len,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t HashString(std::string_view s,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a64(s.data(), s.size(), seed);
}

/// Strong 64-bit integer mixer (final step of murmur3 / splitmix).
inline std::uint64_t MixHash(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t HashCombine(std::uint64_t a, std::uint64_t b) {
  return MixHash(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace cre

#endif  // CRE_CORE_HASH_H_
