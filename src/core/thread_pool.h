#ifndef CRE_CORE_THREAD_POOL_H_
#define CRE_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cre {

/// Fixed-size worker pool used by the morsel-driven parallel executor.
/// Tasks are std::function<void()>; Wait() blocks until all submitted tasks
/// have finished.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

  /// Convenience: splits [0, n) into contiguous chunks and runs
  /// fn(begin, end) on the pool, blocking until done. Falls back to a
  /// direct call when n is small or the pool has one thread.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t min_chunk = 1024);

  /// Shared process-wide pool sized to the hardware concurrency.
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  std::size_t outstanding_ = 0;
  bool shutdown_ = false;
};

}  // namespace cre

#endif  // CRE_CORE_THREAD_POOL_H_
