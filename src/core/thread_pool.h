#ifndef CRE_CORE_THREAD_POOL_H_
#define CRE_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "core/mutex.h"

namespace cre {

/// Abstract task-execution surface the parallel operators run on. Two
/// implementations exist: the raw fixed-size ThreadPool (one exclusive
/// user, the pre-serving behavior) and QueryScheduler::Group
/// (engine/scheduler.h), which multiplexes the tasks of many concurrently
/// admitted queries over one shared pool with fair dispatch. Operators
/// take a TaskRunner* so the same code serves both worlds.
///
/// Contract: Wait() blocks until every task submitted *through this
/// runner* has finished — never tasks submitted through a different
/// runner sharing the same threads. Tasks must not call Wait() themselves
/// (all scheduling happens on the driver thread; workers never block on
/// the pool), which keeps fixed-size pools deadlock-free.
class TaskRunner {
 public:
  virtual ~TaskRunner() = default;

  /// Enqueues a task for execution on some worker thread.
  virtual void Submit(std::function<void()> task) = 0;

  /// Blocks until every task submitted through this runner has completed.
  virtual void Wait() = 0;

  /// Worker threads behind this runner (callers use <= 1 as the
  /// "run serially instead" signal).
  virtual std::size_t num_threads() const = 0;

  /// Convenience: splits [0, n) into contiguous chunks and runs
  /// fn(begin, end) on the runner, blocking until done. Falls back to a
  /// direct call when n is small or only one thread backs the runner.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t min_chunk = 1024);
};

/// Fixed-size worker pool used by the morsel-driven parallel executor.
/// Tasks are std::function<void()>; Wait() blocks until all submitted tasks
/// have finished.
class ThreadPool : public TaskRunner {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task) override;

  /// Blocks until every task submitted so far has completed. Note this is
  /// pool-global: with multiple concurrent submitters it waits for all of
  /// them (the QueryScheduler's per-query groups exist to avoid exactly
  /// this coupling on the query path).
  void Wait() override;

  std::size_t num_threads() const override { return workers_.size(); }

  /// Shared process-wide pool sized to the hardware concurrency.
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ CRE_GUARDED_BY(mu_);
  CondVar task_cv_;
  CondVar done_cv_;
  std::size_t outstanding_ CRE_GUARDED_BY(mu_) = 0;
  bool shutdown_ CRE_GUARDED_BY(mu_) = false;
};

}  // namespace cre

#endif  // CRE_CORE_THREAD_POOL_H_
