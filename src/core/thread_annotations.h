#ifndef CRE_CORE_THREAD_ANNOTATIONS_H_
#define CRE_CORE_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros. Under Clang these make
/// the locking discipline machine-checked at compile time (CI builds with
/// -Wthread-safety -Werror=thread-safety); under GCC and MSVC every macro
/// expands to nothing, so the annotations are pure documentation there.
///
/// Usage conventions in this codebase:
///  - every mutex-protected member is declared GUARDED_BY(mu_);
///  - every private *Locked() helper is declared REQUIRES(mu_);
///  - public entry points that take the lock themselves are (implicitly)
///    EXCLUDES(mu_) — annotate explicitly when re-entry would deadlock;
///  - condition-variable waits are written as explicit while-loops in the
///    annotated function body (lambda predicates are analyzed as separate
///    functions and cannot see the held capability).
///
/// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CRE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef CRE_THREAD_ANNOTATION
#define CRE_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CRE_CAPABILITY(x) CRE_THREAD_ANNOTATION(capability(x))

#define CRE_SCOPED_CAPABILITY CRE_THREAD_ANNOTATION(scoped_lockable)

#define CRE_GUARDED_BY(x) CRE_THREAD_ANNOTATION(guarded_by(x))

#define CRE_PT_GUARDED_BY(x) CRE_THREAD_ANNOTATION(pt_guarded_by(x))

#define CRE_REQUIRES(...) \
  CRE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define CRE_REQUIRES_SHARED(...) \
  CRE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define CRE_ACQUIRE(...) CRE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define CRE_ACQUIRE_SHARED(...) \
  CRE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define CRE_RELEASE(...) CRE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define CRE_TRY_ACQUIRE(...) \
  CRE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define CRE_EXCLUDES(...) CRE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define CRE_RETURN_CAPABILITY(x) CRE_THREAD_ANNOTATION(lock_returned(x))

#define CRE_NO_THREAD_SAFETY_ANALYSIS \
  CRE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // CRE_CORE_THREAD_ANNOTATIONS_H_
