#ifndef CRE_CORE_FAULT_INJECTION_H_
#define CRE_CORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/mutex.h"
#include "core/status.h"

namespace cre {

/// Trigger description for one fault site. A fault fires either
/// probabilistically (`probability` in (0,1]) or deterministically on the
/// nth hit (`after_hits` == n-1 skips before firing). `persistent` keeps
/// firing after the first trigger; one-shot specs disarm themselves.
struct FaultSpec {
  double probability = 1.0;
  std::uint64_t after_hits = 0;
  bool persistent = false;
  StatusCode code = StatusCode::kIoError;
  std::string message;
};

/// Site-keyed fault-injection harness for chaos testing. Production code
/// sprinkles `CRE_INJECT_FAULT("persist.write")` at failure points; when
/// the harness is disabled (the default) each call is one relaxed atomic
/// load and a predictable branch. Tests (or the `CRE_FAULTS` env var)
/// arm sites to return injected Status errors and assert the engine
/// degrades cleanly.
///
/// Env format: CRE_FAULTS="site[:p=0.5][:n=3][:persistent][:code=io],site2"
/// where p is a probability, n an nth-hit trigger (1-based), and code one
/// of io|internal|resource|cancelled.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `site`. Overwrites any existing spec for the site.
  void Arm(const std::string& site, FaultSpec spec);
  /// Disarms one site.
  void Disarm(const std::string& site);
  /// Disarms everything and zeroes hit counters.
  void Reset();

  /// Probe from production code: returns OK unless `site` is armed and
  /// its trigger fires. Never called on the fast path when disabled —
  /// use the CRE_INJECT_FAULT macro, which checks enabled() first.
  Status Check(const std::string& site);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Total faults fired since the last Reset().
  std::uint64_t fired_total() const {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Hits observed at a site (armed sites only).
  std::uint64_t hits(const std::string& site) const;

  /// The compiled-in catalogue of every site the engine can fault. Chaos
  /// sweeps iterate this so a new site cannot silently escape coverage.
  static const std::vector<std::string>& SiteCatalogue();

 private:
  FaultInjector();

  struct ArmedSite {
    FaultSpec spec;
    std::uint64_t hit_count = 0;
    bool spent = false;  // one-shot already fired
  };

  void ParseEnv(const char* env);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> fired_{0};
  mutable Mutex mu_;
  std::map<std::string, ArmedSite> sites_ CRE_GUARDED_BY(mu_);
  std::uint64_t rng_state_ CRE_GUARDED_BY(mu_) = 0x9e3779b97f4a7c15ull;
};

/// Fault probe: evaluates to a Status to be checked at the call site.
/// Disabled harness => one relaxed load, no map lookup, no lock.
#define CRE_INJECT_FAULT(site)                            \
  (::cre::FaultInjector::Global().enabled()               \
       ? ::cre::FaultInjector::Global().Check(site)       \
       : ::cre::Status::OK())

/// Convenience: returns from the enclosing function when the site fires.
#define CRE_RETURN_IF_FAULT(site)                         \
  do {                                                    \
    if (::cre::FaultInjector::Global().enabled()) {       \
      ::cre::Status _fst =                                \
          ::cre::FaultInjector::Global().Check(site);     \
      if (!_fst.ok()) return _fst;                        \
    }                                                     \
  } while (false)

}  // namespace cre

#endif  // CRE_CORE_FAULT_INJECTION_H_
