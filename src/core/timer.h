#ifndef CRE_CORE_TIMER_H_
#define CRE_CORE_TIMER_H_

#include <chrono>

namespace cre {

/// Wall-clock stopwatch for bench harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cre

#endif  // CRE_CORE_TIMER_H_
