#include "kb/knowledge_base.h"

namespace cre {

void KnowledgeBase::AddTriple(std::string subject, std::string predicate,
                              std::string object) {
  triples_.push_back(
      {std::move(subject), std::move(predicate), std::move(object)});
}

std::vector<std::string> KnowledgeBase::Objects(
    const std::string& subject, const std::string& predicate) const {
  std::vector<std::string> out;
  for (const auto& t : triples_) {
    if (t.subject == subject && t.predicate == predicate) {
      out.push_back(t.object);
    }
  }
  return out;
}

std::vector<std::string> KnowledgeBase::Subjects(
    const std::string& predicate, const std::string& object) const {
  std::vector<std::string> out;
  for (const auto& t : triples_) {
    if (t.predicate == predicate && t.object == object) {
      out.push_back(t.subject);
    }
  }
  return out;
}

TablePtr KnowledgeBase::Export(const std::string& predicate) const {
  auto table = Table::Make(Schema({{"subject", DataType::kString, 0},
                                   {"object", DataType::kString, 0}}));
  for (const auto& t : triples_) {
    if (t.predicate == predicate) {
      table->column(0).AppendString(t.subject);
      table->column(1).AppendString(t.object);
    }
  }
  return table;
}

TablePtr KnowledgeBase::AsTable() const {
  auto table = Table::Make(Schema({{"subject", DataType::kString, 0},
                                   {"predicate", DataType::kString, 0},
                                   {"object", DataType::kString, 0}}));
  for (const auto& t : triples_) {
    table->column(0).AppendString(t.subject);
    table->column(1).AppendString(t.predicate);
    table->column(2).AppendString(t.object);
  }
  return table;
}

}  // namespace cre
