#ifndef CRE_KB_KNOWLEDGE_BASE_H_
#define CRE_KB_KNOWLEDGE_BASE_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace cre {

/// A (subject, predicate, object) fact.
struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;
};

/// Minimal in-memory triple store standing in for the general knowledge
/// base of the motivating example (Fig. 2, source 2). Curated on a
/// *broader* vocabulary than the RDBMS, so its labels only match product
/// labels semantically — exactly the integration gap the paper's semantic
/// join closes.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  void AddTriple(std::string subject, std::string predicate,
                 std::string object);

  std::size_t size() const { return triples_.size(); }
  const std::vector<Triple>& triples() const { return triples_; }

  /// All objects o with (subject, predicate, o).
  std::vector<std::string> Objects(const std::string& subject,
                                   const std::string& predicate) const;

  /// All subjects s with (s, predicate, object).
  std::vector<std::string> Subjects(const std::string& predicate,
                                    const std::string& object) const;

  /// Relational export of one predicate: {subject:string, object:string}.
  /// This is how KB facts enter the engine's holistic plan.
  TablePtr Export(const std::string& predicate) const;

  /// Full relational view {subject, predicate, object}.
  TablePtr AsTable() const;

 private:
  std::vector<Triple> triples_;
};

}  // namespace cre

#endif  // CRE_KB_KNOWLEDGE_BASE_H_
