#ifndef CRE_OPTIMIZER_PLAN_CACHE_H_
#define CRE_OPTIMIZER_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/mutex.h"
#include "plan/plan_node.h"
#include "semantic/semantic_join.h"
#include "types/value.h"

namespace cre {

struct PlanCacheOptions {
  /// Master switch: disabled, the engine plans every query as before.
  bool enabled = true;
  /// Installed entries retained (LRU beyond this). In-flight planning
  /// placeholders don't count against the bound.
  std::size_t capacity = 64;
};

/// Parameterized plan cache: repeat traffic skips the optimizer.
///
/// The key is the *normalized plan shape* — plan structure plus every
/// identity and strategy-relevant knob (tables, columns, models,
/// thresholds, strategies, group keys, sort keys, limits) — with literal
/// constants and semantic query strings parameterized out, concatenated
/// with a signature of the engine's effective optimizer knobs (so a tuned
/// knob change re-plans naturally). Two queries that differ only in
/// literal values share one entry; a hit rebinds the cached optimized
/// plan's parameters by value substitution and returns it without running
/// a single optimizer rule.
///
/// Freshness is validated at lookup, not invalidated by callbacks:
///  - per-table version stamps: the entry records the catalog stamp of
///    every table the optimized plan touches; any mismatch against the
///    looking query's snapshot drops the entry and re-plans (appends and
///    destructive Puts both bump stamps);
///  - index-residency class: the entry records, for every managed-index
///    candidate the plan shape exposes (index-backed selects and
///    indexable semantic-join build sides, across all index families),
///    whether that index was absent at plan time. A flip between absent
///    and any non-absent state can change the chosen strategy, so it
///    re-plans; transitions among building/on-disk/resident states are
///    cost-irrelevant to the cached choice and deliberately don't.
///
/// Population is single-flight: concurrent misses on one fingerprint
/// produce one planning ticket; the others wait on the install and then
/// hit. Plans whose optimization executed data-induced-predicate subplans
/// are literal-dependent and are never cached (Install detects the DIP
/// rewrite and releases the ticket uncached).
///
/// Thread-safe; rebinding runs outside the cache lock. Cached PlanNode
/// trees are immutable after install — execution paths take const plans —
/// and hold table *names* only (never TablePtrs), so a cached plan
/// structurally cannot pin rows past any query's snapshot.
class PlanCache {
 public:
  /// One managed-index candidate whose residency class the cached plan's
  /// strategy choice could depend on.
  struct IndexCandidate {
    std::string table;
    std::string column;
    std::string model;
    SemanticJoinStrategy strategy = SemanticJoinStrategy::kHnsw;
  };

  /// Catalog version stamp of a table, as seen by the looking query's
  /// snapshot (missing tables return a stable 0).
  using VersionProbe = std::function<std::uint64_t(const std::string&)>;
  /// True when the candidate's managed index is absent (no entry, no
  /// build in flight, no persisted image).
  using AbsentProbe = std::function<bool(const IndexCandidate&)>;

  /// Normalized form of one logical plan: the fingerprint (cache key) and
  /// the parameter values extracted from it, in traversal order.
  struct Shape {
    std::string fingerprint;
    std::vector<Value> value_params;        ///< literals, pre-order
    std::vector<std::string> query_params;  ///< semantic query strings
    std::size_t multi_selects = 0;  ///< DIP multi-select nodes in the source
  };

  /// Computes the shape of a logical plan under the engine's current knob
  /// signature. Pure; does not touch the cache.
  static Shape Normalize(const PlanNode& plan,
                         const std::string& knob_signature);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;  ///< stamp / residency-class drops
    std::uint64_t evictions = 0;
    std::uint64_t uncacheable = 0;    ///< DIP plans (subset of misses)
    std::uint64_t rebind_ambiguous = 0;  ///< hits demoted to misses
    std::uint64_t single_flight_waits = 0;
    std::size_t entries = 0;
    /// Optimizer wall accumulated by misses vs lookup+rebind wall
    /// accumulated by hits — the bench's planning-overhead ratio.
    double planning_seconds = 0;
    double lookup_seconds = 0;
  };

  struct Lookup {
    /// Non-null on a hit: the cached optimized plan, parameter-rebound to
    /// the looking query. Shared when parameters already match.
    PlanPtr plan;
    /// Max table stamp the entry was planned against (for annotations).
    std::uint64_t stamp = 0;
    /// True when the caller must run the optimizer.
    bool must_plan = false;
    /// With must_plan: the caller holds the single-flight planning ticket
    /// and MUST call Install (success) or Abort (failure). Without a
    /// ticket the caller re-plans standalone (ambiguous rebind) and may
    /// Install to refresh the entry.
    bool ticket = false;
  };

  explicit PlanCache(PlanCacheOptions options);

  /// Looks `shape` up, validating stamps and residency classes via the
  /// probes. Blocks while another caller holds the fingerprint's planning
  /// ticket. Never blocks during rebinding.
  Lookup AcquireOrPlan(const Shape& shape, const VersionProbe& version,
                       const AbsentProbe& absent);

  /// Installs an optimized plan for `shape`, recording the stamps and
  /// residency classes it was planned under, and releases the ticket.
  /// DIP-rewritten plans release the ticket without caching.
  /// `planning_seconds` is the optimizer wall the caller measured.
  void Install(const Shape& shape, const PlanPtr& optimized,
               double planning_seconds, const VersionProbe& version,
               const AbsentProbe& absent);

  /// Releases a planning ticket after a failed optimization.
  void Abort(const Shape& shape);

  /// Read-only probe for EXPLAIN: true when a currently-valid installed
  /// entry exists for `shape` (no LRU update, no stats, no waiting).
  bool Peek(const Shape& shape, const VersionProbe& version,
            const AbsentProbe& absent, std::uint64_t* stamp = nullptr) const;

  Stats stats() const;
  const PlanCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    PlanPtr plan;
    std::vector<Value> value_params;
    std::vector<std::string> query_params;
    /// Table name -> catalog stamp at plan time.
    std::vector<std::pair<std::string, std::uint64_t>> stamps;
    /// Candidate -> was-absent class at plan time.
    std::vector<std::pair<IndexCandidate, bool>> residency;
    std::uint64_t stamp = 0;  ///< max of stamps (annotation)
    std::uint64_t lru_tick = 0;
    bool planning = true;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  /// Stamp/residency validation of an installed entry.
  bool ValidLocked(const Entry& entry, const VersionProbe& version,
                   const AbsentProbe& absent) const CRE_REQUIRES(mu_);
  /// Evicts LRU installed entries beyond capacity (never `keep`).
  void EvictLocked(const Entry* keep) CRE_REQUIRES(mu_);

  PlanCacheOptions options_;
  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<std::string, EntryPtr> entries_ CRE_GUARDED_BY(mu_);
  std::uint64_t tick_ CRE_GUARDED_BY(mu_) = 0;
  Stats stats_ CRE_GUARDED_BY(mu_);
};

/// Rebinds the cached plan `plan` (old parameters `old_values` /
/// `old_queries`) to the new parameters. Returns nullptr when the
/// substitution is ambiguous — the same old value maps to two different
/// new values — in which case the caller must re-plan. Shares the cached
/// tree untouched when all parameters already match. Exposed for tests.
PlanPtr RebindPlan(const PlanPtr& plan, const std::vector<Value>& old_values,
                   const std::vector<Value>& new_values,
                   const std::vector<std::string>& old_queries,
                   const std::vector<std::string>& new_queries);

}  // namespace cre

#endif  // CRE_OPTIMIZER_PLAN_CACHE_H_
