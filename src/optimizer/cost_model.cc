#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace cre {

double CostModel::ParallelCost(double cost) const {
  const double p = std::max(1.0, params_.parallelism);
  const double f = std::clamp(params_.parallel_fraction, 0.0, 1.0);
  return cost * ((1.0 - f) + f / p);
}

double CostModel::EmbedCost(const std::string& model_name) const {
  if (models_ != nullptr && models_->Contains(model_name)) {
    return models_->Get(model_name).ValueOrDie()->cost_ns_per_embedding();
  }
  return params_.embed;
}

double CostModel::SemanticJoinStrategyCost(SemanticJoinStrategy strategy,
                                           double left_rows,
                                           double right_rows) const {
  const double dim = params_.vector_dim;
  const double dot = dim * params_.dot_per_dim;
  switch (strategy) {
    case SemanticJoinStrategy::kBruteForce:
      return left_rows * right_rows * dot;
    case SemanticJoinStrategy::kLsh: {
      // Build: hash every base vector into every table; probe: signature
      // computation + exact verification of the candidate fraction.
      const double sig = params_.lsh_tables * params_.lsh_bits * dot;
      const double build = right_rows * sig;
      const double probe =
          left_rows *
          (sig + right_rows * params_.lsh_candidate_fraction *
                     params_.lsh_candidate_cost_multiplier * dot);
      return build + probe;
    }
    case SemanticJoinStrategy::kIvf: {
      const double build = right_rows * params_.ivf_centroids * dot *
                           params_.ivf_kmeans_iters;
      const double scanned_fraction =
          std::min(1.0, params_.ivf_nprobe / params_.ivf_centroids);
      const double probe =
          left_rows * (params_.ivf_centroids * dot +
                       right_rows * scanned_fraction * dot);
      return build + probe;
    }
  }
  return 0;
}

double CostModel::SelfCost(const PlanNode& node) const {
  const double out_rows = std::max(0.0, node.est_rows);
  const double in_rows =
      node.children.empty() ? out_rows
                            : std::max(0.0, node.children[0]->est_rows);
  switch (node.kind) {
    case PlanKind::kScan: {
      double c = out_rows * params_.row_scan;
      if (node.predicate) c += out_rows * params_.expr_eval;
      return ParallelCost(c);
    }
    case PlanKind::kDetectScan: {
      const double images = out_rows / params_.avg_objects_per_image;
      return ParallelCost(images * params_.detect_per_image);
    }
    case PlanKind::kFilter:
      return ParallelCost(in_rows * params_.expr_eval);
    case PlanKind::kProject:
      return ParallelCost(in_rows * params_.materialize);
    case PlanKind::kSort:
      return in_rows * params_.hash_build *
             std::max(1.0, std::log2(std::max(2.0, in_rows)) / 4.0);
    case PlanKind::kLimit:
      return out_rows * params_.row_scan;
    case PlanKind::kSemanticSelect: {
      const double queries =
          node.queries.empty() ? 1.0 : static_cast<double>(node.queries.size());
      return ParallelCost(
          in_rows * (EmbedCost(node.model_name) +
                     queries * params_.vector_dim * params_.dot_per_dim));
    }
    case PlanKind::kJoin: {
      // Build is serial (one shared hash table); the probe spreads over
      // morsel pipelines.
      const double l = node.children[0]->est_rows;
      const double r = node.children[1]->est_rows;
      return r * params_.hash_build +
             ParallelCost(l * params_.hash_probe +
                          out_rows * params_.materialize);
    }
    case PlanKind::kSemanticJoin: {
      const double l = node.children[0]->est_rows;
      const double r = node.children[1]->est_rows;
      const double embed = (l + r) * EmbedCost(node.model_name);
      // Embedding and probing parallelize (vecsim splits the probe side
      // over the pool); result materialization is serial.
      return ParallelCost(embed +
                          SemanticJoinStrategyCost(node.strategy, l, r)) +
             out_rows * params_.materialize;
    }
    case PlanKind::kSemanticGroupBy: {
      // Order-sensitive online clustering: inherently serial consumption.
      // Clusters grow with distinct semantic groups; assume sqrt scaling.
      const double clusters = std::max(4.0, std::sqrt(in_rows));
      return in_rows * (EmbedCost(node.model_name) +
                        clusters * params_.vector_dim * params_.dot_per_dim);
    }
    case PlanKind::kAggregate:
      // Accumulation runs per-worker; the merge+emit tail is serial.
      return ParallelCost(in_rows * params_.hash_build) +
             out_rows * params_.materialize;
  }
  return 0;
}

double CostModel::Annotate(PlanNode* node) const {
  double total = SelfCost(*node);
  for (auto& c : node->children) total += Annotate(c.get());
  node->est_cost = total;
  return total;
}

}  // namespace cre
