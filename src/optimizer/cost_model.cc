#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace cre {

double CostModel::EmbedCost(const std::string& model_name) const {
  if (models_ != nullptr && models_->Contains(model_name)) {
    return models_->Get(model_name).ValueOrDie()->cost_ns_per_embedding();
  }
  return params_.embed;
}

double CostModel::SemanticJoinStrategyCost(SemanticJoinStrategy strategy,
                                           double left_rows,
                                           double right_rows) const {
  const double dim = params_.vector_dim;
  const double dot = dim * params_.dot_per_dim;
  switch (strategy) {
    case SemanticJoinStrategy::kBruteForce:
      return left_rows * right_rows * dot;
    case SemanticJoinStrategy::kLsh: {
      // Build: hash every base vector into every table; probe: signature
      // computation + exact verification of the candidate fraction.
      const double sig = params_.lsh_tables * params_.lsh_bits * dot;
      const double build = right_rows * sig;
      const double probe =
          left_rows *
          (sig + right_rows * params_.lsh_candidate_fraction *
                     params_.lsh_candidate_cost_multiplier * dot);
      return build + probe;
    }
    case SemanticJoinStrategy::kIvf: {
      const double build = right_rows * params_.ivf_centroids * dot *
                           params_.ivf_kmeans_iters;
      const double scanned_fraction =
          std::min(1.0, params_.ivf_nprobe / params_.ivf_centroids);
      const double probe =
          left_rows * (params_.ivf_centroids * dot +
                       right_rows * scanned_fraction * dot);
      return build + probe;
    }
  }
  return 0;
}

double CostModel::SelfCost(const PlanNode& node) const {
  const double out_rows = std::max(0.0, node.est_rows);
  const double in_rows =
      node.children.empty() ? out_rows
                            : std::max(0.0, node.children[0]->est_rows);
  switch (node.kind) {
    case PlanKind::kScan: {
      double c = out_rows * params_.row_scan;
      if (node.predicate) c += out_rows * params_.expr_eval;
      return c;
    }
    case PlanKind::kDetectScan: {
      const double images = out_rows / params_.avg_objects_per_image;
      return images * params_.detect_per_image;
    }
    case PlanKind::kFilter:
      return in_rows * params_.expr_eval;
    case PlanKind::kProject:
      return in_rows * params_.materialize;
    case PlanKind::kSort:
      return in_rows * params_.hash_build *
             std::max(1.0, std::log2(std::max(2.0, in_rows)) / 4.0);
    case PlanKind::kLimit:
      return out_rows * params_.row_scan;
    case PlanKind::kSemanticSelect: {
      const double queries =
          node.queries.empty() ? 1.0 : static_cast<double>(node.queries.size());
      return in_rows * (EmbedCost(node.model_name) +
                        queries * params_.vector_dim * params_.dot_per_dim);
    }
    case PlanKind::kJoin: {
      const double l = node.children[0]->est_rows;
      const double r = node.children[1]->est_rows;
      return r * params_.hash_build + l * params_.hash_probe +
             out_rows * params_.materialize;
    }
    case PlanKind::kSemanticJoin: {
      const double l = node.children[0]->est_rows;
      const double r = node.children[1]->est_rows;
      const double embed = (l + r) * EmbedCost(node.model_name);
      return embed + SemanticJoinStrategyCost(node.strategy, l, r) +
             out_rows * params_.materialize;
    }
    case PlanKind::kSemanticGroupBy: {
      // Clusters grow with distinct semantic groups; assume sqrt scaling.
      const double clusters = std::max(4.0, std::sqrt(in_rows));
      return in_rows * (EmbedCost(node.model_name) +
                        clusters * params_.vector_dim * params_.dot_per_dim);
    }
    case PlanKind::kAggregate:
      return in_rows * params_.hash_build + out_rows * params_.materialize;
  }
  return 0;
}

double CostModel::Annotate(PlanNode* node) const {
  double total = SelfCost(*node);
  for (auto& c : node->children) total += Annotate(c.get());
  node->est_cost = total;
  return total;
}

}  // namespace cre
