#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace cre {

double CostModel::ParallelCost(double cost) const {
  const double p = std::max(1.0, params_.parallelism);
  const double f = std::clamp(params_.parallel_fraction, 0.0, 1.0);
  return cost * ((1.0 - f) + f / p);
}

double CostModel::EmbedCost(const std::string& model_name) const {
  if (models_ != nullptr && models_->Contains(model_name)) {
    return models_->Get(model_name).ValueOrDie()->cost_ns_per_embedding();
  }
  return params_.embed;
}

double CostModel::SemanticIndexBuildCost(SemanticJoinStrategy strategy,
                                         double base_rows) const {
  const double dot = params_.vector_dim * params_.dot_per_dim;
  switch (strategy) {
    case SemanticJoinStrategy::kBruteForce:
      return 0;
    case SemanticJoinStrategy::kLsh:
      // Hash every base vector into every table.
      return base_rows * params_.lsh_tables * params_.lsh_bits * dot;
    case SemanticJoinStrategy::kIvf:
      return base_rows * params_.ivf_centroids * dot *
             params_.ivf_kmeans_iters;
    case SemanticJoinStrategy::kHnsw:
      // Each insert runs an ef_construction beam search per layer;
      // expected layer count per node is a small constant. The
      // multiplier covers neighbor selection and reverse-link shrinking
      // (fitted; see CostParams::hnsw_build_cost_multiplier).
      return base_rows * params_.hnsw_ef_construction *
             params_.hnsw_expansion_factor *
             params_.hnsw_build_cost_multiplier * dot;
    case SemanticJoinStrategy::kIvfPq:
      // Coarse k-means (as IVF, with its own centroid count) + PQ
      // training: every residual is scanned against 256 codewords per
      // subspace per Lloyd iteration (subspace dots are dim/m wide, so
      // one full sweep costs ~256 * dot per row), + encoding (one more
      // sweep).
      return base_rows * dot *
             (params_.ivfpq_centroids * params_.ivf_kmeans_iters +
              256.0 * (params_.ivfpq_kmeans_iters + 1.0));
  }
  return 0;
}

double CostModel::SemanticIndexProbeCost(SemanticJoinStrategy strategy,
                                         double probe_rows,
                                         double base_rows) const {
  const double dot = params_.vector_dim * params_.dot_per_dim;
  switch (strategy) {
    case SemanticJoinStrategy::kBruteForce:
      return probe_rows * base_rows * dot;
    case SemanticJoinStrategy::kLsh: {
      // Signature computation + exact verification of the candidate set.
      const double sig = params_.lsh_tables * params_.lsh_bits * dot;
      return probe_rows *
             (sig + base_rows * params_.lsh_candidate_fraction *
                        params_.lsh_candidate_cost_multiplier * dot);
    }
    case SemanticJoinStrategy::kIvf: {
      const double scanned_fraction =
          std::min(1.0, params_.ivf_nprobe / params_.ivf_centroids);
      return probe_rows * (params_.ivf_centroids * dot +
                           base_rows * scanned_fraction * dot);
    }
    case SemanticJoinStrategy::kHnsw: {
      const double descent =
          params_.hnsw_m * std::log2(std::max(2.0, base_rows));
      const double beam = std::min(
          base_rows,
          params_.hnsw_ef_search * params_.hnsw_expansion_factor);
      return probe_rows * (descent + beam) * dot;
    }
    case SemanticJoinStrategy::kIvfPq: {
      // Centroid scoring + LUT fill (256 subspace dots = ~256/m full
      // dots) + ADC over the probed lists at one table-add per subspace
      // per row (a fraction of a full dot), + the reconstruction
      // re-rank of a constant-size band (folded into the ADC term).
      const double scanned_fraction =
          std::min(1.0, params_.ivfpq_nprobe / params_.ivfpq_centroids);
      const double lut = 256.0 / std::max(1.0, params_.ivfpq_m) * dot;
      const double adc_row = params_.ivfpq_m * params_.ivfpq_adc_per_sub *
                             params_.dot_per_dim;
      return probe_rows * (params_.ivfpq_centroids * dot + lut +
                           base_rows * scanned_fraction * adc_row);
    }
  }
  return 0;
}

double CostModel::SemanticJoinStrategyCost(SemanticJoinStrategy strategy,
                                           double left_rows,
                                           double right_rows) const {
  return SemanticIndexBuildCost(strategy, right_rows) +
         SemanticIndexProbeCost(strategy, left_rows, right_rows);
}

double CostModel::SemanticSelectStrategyCost(double base_rows,
                                             const std::string& model_name,
                                             SemanticJoinStrategy strategy,
                                             bool resident) const {
  return SemanticSelectStrategyCost(
      base_rows, model_name, strategy,
      resident ? IndexResidency::kResident : IndexResidency::kAbsent);
}

double CostModel::SemanticSelectStrategyCost(double base_rows,
                                             const std::string& model_name,
                                             SemanticJoinStrategy strategy,
                                             IndexResidency residency) const {
  if (strategy == SemanticJoinStrategy::kBruteForce) {
    return ParallelCost(base_rows *
                        (EmbedCost(model_name) +
                         params_.vector_dim * params_.dot_per_dim));
  }
  double c = EmbedCost(model_name) +
             SemanticIndexProbeCost(strategy, 1.0, base_rows);
  if (residency == IndexResidency::kOnDisk) {
    // Adopt the persisted image: deserialize + validate, no embedding.
    c += base_rows * params_.index_load_per_row;
  } else if (residency == IndexResidency::kRefreshable) {
    // Incremental renewal: insert only the appended slice.
    c += base_rows * params_.index_refresh_per_row;
  } else if (residency == IndexResidency::kAbsent) {
    c += (base_rows * EmbedCost(model_name) +
          SemanticIndexBuildCost(strategy, base_rows)) *
         params_.background_build_discount /
         std::max(1.0, params_.index_reuse_horizon);
  }
  return c;
}

double CostModel::AmortizedStrategyCost(SemanticJoinStrategy strategy,
                                        double probe_rows, double base_rows,
                                        bool resident, bool reusable) const {
  return AmortizedStrategyCost(
      strategy, probe_rows, base_rows,
      resident ? IndexResidency::kResident : IndexResidency::kAbsent,
      reusable);
}

double CostModel::AmortizedStrategyCost(SemanticJoinStrategy strategy,
                                        double probe_rows, double base_rows,
                                        IndexResidency residency,
                                        bool reusable) const {
  const double probe =
      SemanticIndexProbeCost(strategy, probe_rows, base_rows);
  if (strategy == SemanticJoinStrategy::kBruteForce) return probe;
  // A persisted image loads, and a stale-by-append index renews
  // incrementally, for a fraction of any rebuild.
  if (residency == IndexResidency::kOnDisk) {
    return probe + base_rows * params_.index_load_per_row;
  }
  if (residency == IndexResidency::kRefreshable) {
    return probe + base_rows * params_.index_refresh_per_row;
  }
  // Warm, or a background build the stream has already paid for.
  if (residency != IndexResidency::kAbsent) return probe;
  const double build = SemanticIndexBuildCost(strategy, base_rows);
  const double horizon =
      reusable ? std::max(1.0, params_.index_reuse_horizon) : 1.0;
  return build * params_.background_build_discount / horizon + probe;
}

double CostModel::SelfCost(const PlanNode& node) const {
  const double out_rows = std::max(0.0, node.est_rows);
  const double in_rows =
      node.children.empty() ? out_rows
                            : std::max(0.0, node.children[0]->est_rows);
  switch (node.kind) {
    case PlanKind::kScan: {
      double c = out_rows * params_.row_scan;
      if (node.predicate) c += out_rows * params_.expr_eval;
      return ParallelCost(c);
    }
    case PlanKind::kDetectScan: {
      const double images = out_rows / params_.avg_objects_per_image;
      return ParallelCost(images * params_.detect_per_image);
    }
    case PlanKind::kFilter:
      return ParallelCost(in_rows * params_.expr_eval);
    case PlanKind::kProject:
      return ParallelCost(in_rows * params_.materialize);
    case PlanKind::kSort:
      // Per-run local sorts and the splitter-partitioned loser-tree
      // merge both spread over the pool; sampling, boundary search, and
      // scheduling are the serial residue inside parallel_fraction.
      return ParallelCost(
          in_rows * params_.hash_build *
          std::max(1.0, std::log2(std::max(2.0, in_rows)) / 4.0));
    case PlanKind::kLimit:
      // Runs through the morsel scheduler under a shared row budget; the
      // budget's prefix cutoff bounds work by output, not input.
      return ParallelCost(out_rows * params_.row_scan);
    case PlanKind::kSemanticSelect: {
      if (node.IndexBackedSelect()) {
        // Index-backed range search: embed one query and probe the managed
        // whole-table index instead of embedding every input row. Cold
        // builds amortize over the reuse horizon; a persisted on-disk
        // image charges its load; resident indexes are free to reuse
        // (the IndexManager already holds them).
        double c = EmbedCost(node.model_name) +
                   SemanticIndexProbeCost(node.strategy, 1.0, in_rows);
        const bool warm = node.index_resident ||
                          node.index_residency == IndexResidency::kResident ||
                          node.index_residency == IndexResidency::kBuilding;
        if (node.index_residency == IndexResidency::kOnDisk) {
          c += in_rows * params_.index_load_per_row;
        } else if (node.index_residency == IndexResidency::kRefreshable) {
          c += in_rows * params_.index_refresh_per_row;
        } else if (!warm) {
          c += (in_rows * EmbedCost(node.model_name) +
                SemanticIndexBuildCost(node.strategy, in_rows)) /
               std::max(1.0, params_.index_reuse_horizon);
        }
        return c + out_rows * params_.materialize;
      }
      const double queries =
          node.queries.empty() ? 1.0 : static_cast<double>(node.queries.size());
      return ParallelCost(
          in_rows * (EmbedCost(node.model_name) +
                     queries * params_.vector_dim * params_.dot_per_dim));
    }
    case PlanKind::kJoin: {
      // Build is serial (one shared hash table); the probe spreads over
      // morsel pipelines.
      const double l = node.children[0]->est_rows;
      const double r = node.children[1]->est_rows;
      return r * params_.hash_build +
             ParallelCost(l * params_.hash_probe +
                          out_rows * params_.materialize);
    }
    case PlanKind::kSemanticJoin: {
      const double l = node.children[0]->est_rows;
      const double r = node.children[1]->est_rows;
      // With a resident shared index the operator skips both the
      // build-side embedding and the index construction (warm path).
      const double embed =
          (node.index_resident ? l : l + r) * EmbedCost(node.model_name);
      const double strategy =
          node.index_resident
              ? SemanticIndexProbeCost(node.strategy, l, r)
              : SemanticJoinStrategyCost(node.strategy, l, r);
      // Embedding and probing parallelize (vecsim splits the probe side
      // over the pool); result materialization is serial.
      return ParallelCost(embed + strategy) + out_rows * params_.materialize;
    }
    case PlanKind::kSemanticGroupBy: {
      // Order-sensitive online clustering: inherently serial consumption.
      // Clusters grow with distinct semantic groups; assume sqrt scaling.
      const double clusters = std::max(4.0, std::sqrt(in_rows));
      return in_rows * (EmbedCost(node.model_name) +
                        clusters * params_.vector_dim * params_.dot_per_dim);
    }
    case PlanKind::kAggregate:
      return AggregateCost(in_rows, out_rows);
  }
  return 0;
}

double CostModel::AggregateMergeFormCost(double in_rows,
                                         double out_groups) const {
  const double p = std::max(1.0, params_.parallelism);
  // Accumulation spreads over workers, then each of the p-1 non-first
  // partials folds its (up to out_groups) entries into the total on the
  // driver thread — the serial merge tail — before the serial emit.
  return ParallelCost(in_rows * params_.hash_build) +
         out_groups * (p - 1.0) * params_.hash_probe +
         out_groups * params_.materialize;
}

double CostModel::AggregateRadixFormCost(double in_rows,
                                         double out_groups) const {
  const double p = std::max(1.0, params_.parallelism);
  // Phase 1 pays per-row radix routing on top of the hash accumulation;
  // phase 2's per-partition merges and emits fan out over the pool.
  return ParallelCost(in_rows * (params_.hash_build + params_.radix_route)) +
         ParallelCost(out_groups * (p - 1.0) * params_.hash_probe +
                      out_groups * params_.materialize);
}

double CostModel::AggregateCost(double in_rows, double out_groups) const {
  return std::min(AggregateMergeFormCost(in_rows, out_groups),
                  AggregateRadixFormCost(in_rows, out_groups));
}

double CostModel::Annotate(PlanNode* node) const {
  double total = SelfCost(*node);
  for (auto& c : node->children) total += Annotate(c.get());
  node->est_cost = total;
  return total;
}

}  // namespace cre
