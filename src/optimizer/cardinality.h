#ifndef CRE_OPTIMIZER_CARDINALITY_H_
#define CRE_OPTIMIZER_CARDINALITY_H_

#include "core/status.h"
#include "embed/model_registry.h"
#include "plan/plan_node.h"
#include "storage/catalog.h"
#include "vision/detection_scan.h"

namespace cre {

/// Tunables for the estimator.
struct CardinalityOptions {
  std::size_t sample_size = 256;
  /// Default match probability for a semantic pair when sampling is not
  /// possible.
  double default_semantic_match_prob = 2e-4;
  /// Default selectivity of a semantic select without a sample.
  double default_semantic_select_sel = 0.05;
  /// Average detected objects per image (detection fan-out).
  double avg_objects_per_image = 3.0;
};

/// Estimates output cardinalities bottom-up and writes them into
/// PlanNode::est_rows. Model operators are estimated *with the model*
/// (sampling base-table strings and probing the embedding space), the
/// paper's requirement that model operators expose cardinality effects to
/// the optimizer (Sec. IV: "include high-level cost information, such as
/// the effect on the input/output cardinality").
class CardinalityEstimator {
 public:
  CardinalityEstimator(const Catalog* catalog, const ModelRegistry* models,
                       const DetectorRegistry* detectors,
                       CardinalityOptions options = {})
      : catalog_(catalog),
        models_(models),
        detectors_(detectors),
        options_(options) {}

  /// Fills est_rows on every node of the tree.
  Status Annotate(PlanNode* node) const;

  /// Heuristic selectivity of a relational predicate (no data access).
  static double HeuristicSelectivity(const Expr& predicate);

 private:
  Result<double> Estimate(PlanNode* node) const;
  /// Sample-based selectivity when the child is a base-table scan.
  Result<double> SemanticSelectSelectivity(const PlanNode& node) const;
  Result<double> SemanticJoinMatchProb(const PlanNode& node) const;
  /// Returns the base table when `node` bottoms out at a plain scan chain
  /// (scan / filter / semantic-select over scan), else nullptr.
  TablePtr BaseTableOf(const PlanNode& node) const;

  const Catalog* catalog_;
  const ModelRegistry* models_;
  const DetectorRegistry* detectors_;
  CardinalityOptions options_;
};

}  // namespace cre

#endif  // CRE_OPTIMIZER_CARDINALITY_H_
