#include "optimizer/optimizer.h"

namespace cre {

Result<PlanPtr> Optimizer::Optimize(const PlanPtr& plan) const {
  PlanPtr p = plan->Clone();

  if (options_.enable_filter_pushdown) {
    CRE_ASSIGN_OR_RETURN(p, RulePushDownFilters(p, *catalog_));
  }
  CRE_RETURN_NOT_OK(estimator_.Annotate(p.get()));

  if (options_.enable_join_reorder) {
    CRE_ASSIGN_OR_RETURN(p, RuleReorderJoinInputs(p, *catalog_));
  }
  if (options_.enable_data_induced_predicates && subplan_executor_) {
    CRE_ASSIGN_OR_RETURN(p, RuleDataInducedPredicates(
                                p, subplan_executor_,
                                options_.dip_max_inducing_rows));
    // DIP inserts nodes; refresh cardinalities for the strategy rule.
    CRE_RETURN_NOT_OK(estimator_.Annotate(p.get()));
  }
  if (options_.enable_index_selection &&
      options_.allow_approximate_similarity) {
    p = RulePickSemanticJoinStrategy(p, cost_, index_residency_);
    p = RulePickSemanticSelectStrategy(p, cost_, index_residency_);
  }
  if (options_.enable_column_pruning) {
    CRE_ASSIGN_OR_RETURN(p, RulePruneColumns(p, *catalog_));
  }
  CRE_RETURN_NOT_OK(Annotate(p.get()));
  return p;
}

Status Optimizer::Annotate(PlanNode* plan) const {
  CRE_RETURN_NOT_OK(estimator_.Annotate(plan));
  cost_.Annotate(plan);
  return Status::OK();
}

Result<std::string> Optimizer::Explain(const PlanPtr& plan) const {
  CRE_ASSIGN_OR_RETURN(PlanPtr optimized, Optimize(plan));
  return optimized->ToString();
}

}  // namespace cre
