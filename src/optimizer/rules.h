#ifndef CRE_OPTIMIZER_RULES_H_
#define CRE_OPTIMIZER_RULES_H_

#include <functional>

#include "core/result.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "plan/plan_node.h"
#include "storage/catalog.h"

namespace cre {

/// Callback the DIP rule uses to execute a small subplan at optimization
/// time (the predicates are induced from *data*, so deriving them requires
/// evaluating the inducing side). Provided by the engine.
using SubplanExecutor =
    std::function<Result<TablePtr>(const PlanPtr& subplan)>;

/// Rule 1 — filter pushdown (incl. across semantic operators and into
/// scans/detect-scans). Splits conjunctions and pushes each term to the
/// deepest node whose schema binds all referenced columns. Pushing a date
/// filter below the object detector is the paper's motivating
/// optimization (Sec. II step 3).
Result<PlanPtr> RulePushDownFilters(PlanPtr plan, const Catalog& catalog);

/// Rule 2 — join input ordering: puts the smaller estimated side on the
/// build (right) position of hash joins and semantic joins. Requires
/// cardinality annotations. Only fires when the two sides share no column
/// names (a collision would re-bind names across the swap).
Result<PlanPtr> RuleReorderJoinInputs(PlanPtr plan, const Catalog& catalog);

/// Rule 3 — data-induced predicates (paper Sec. IV, [23]): when one side
/// of a semantic join is estimated tiny, executes it, collects the
/// distinct join-key strings, and inserts a semantic multi-select with
/// those strings on the other (large) side, shrinking it before expensive
/// work. `max_inducing_rows` bounds the executed side.
Result<PlanPtr> RuleDataInducedPredicates(PlanPtr plan,
                                          const SubplanExecutor& executor,
                                          std::size_t max_inducing_rows = 64);

/// Answers "what amortization state is the managed index of family
/// `kind` over (table, column, model) in right now?" — the optimizer's
/// residency signal (kResident / kBuilding for an in-flight background
/// build / kAbsent). Provided by the engine; null means "no index
/// subsystem" (all lookups cold, index-backed semantic selects
/// unavailable).
using IndexResidencyProbe = std::function<IndexResidency(
    const std::string& table, const std::string& column,
    const std::string& model, SemanticJoinStrategy kind)>;

/// Rule 4 — cost-based physical strategy selection for semantic joins
/// (brute force vs LSH vs IVF vs HNSW), the similarity analogue of index
/// selection (Sec. V). Distinguishes three amortization states per
/// strategy: resident in the IndexManager (probe cost only), reusable
/// (bare-scan build side — cold build amortized over the expected reuse
/// horizon), and one-shot (full build cost, the pre-manager behavior).
/// Requires cardinality annotations; skips nodes with strategy_pinned.
PlanPtr RulePickSemanticJoinStrategy(
    PlanPtr plan, const CostModel& cost,
    const IndexResidencyProbe& residency = nullptr);

/// Rule 4b — index-backed semantic select: when a single-query semantic
/// select sits on a bare catalog scan and a managed whole-table index
/// (amortized) is cheaper than the embed-every-row scan, flips the node's
/// strategy to the winning index family. Only fires when `residency` is
/// non-null (an engine with an IndexManager), since the physical operator
/// needs the manager to serve the index.
PlanPtr RulePickSemanticSelectStrategy(PlanPtr plan, const CostModel& cost,
                                       const IndexResidencyProbe& residency);

/// Rule 5 — projection pruning: narrows scans to the columns actually
/// referenced above them (reduces materialization and join copying).
Result<PlanPtr> RulePruneColumns(PlanPtr plan, const Catalog& catalog);

}  // namespace cre

#endif  // CRE_OPTIMIZER_RULES_H_
