#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "expr/evaluator.h"
#include "vecsim/kernels.h"

namespace cre {

double CardinalityEstimator::HeuristicSelectivity(const Expr& predicate) {
  switch (predicate.kind()) {
    case ExprKind::kCompare:
      switch (predicate.compare_op()) {
        case CompareOp::kEq:
          return 0.05;
        case CompareOp::kNe:
          return 0.95;
        default:
          return 0.33;  // range predicates
      }
    case ExprKind::kAnd:
      return HeuristicSelectivity(*predicate.children()[0]) *
             HeuristicSelectivity(*predicate.children()[1]);
    case ExprKind::kOr: {
      const double a = HeuristicSelectivity(*predicate.children()[0]);
      const double b = HeuristicSelectivity(*predicate.children()[1]);
      return std::min(1.0, a + b - a * b);
    }
    case ExprKind::kNot:
      return 1.0 - HeuristicSelectivity(*predicate.children()[0]);
    case ExprKind::kStrContains:
      return 0.1;
    default:
      return 1.0;
  }
}

TablePtr CardinalityEstimator::BaseTableOf(const PlanNode& node) const {
  if (node.kind == PlanKind::kScan) {
    auto r = catalog_->Get(node.table_name);
    return r.ok() ? r.ValueOrDie() : nullptr;
  }
  if ((node.kind == PlanKind::kFilter ||
       node.kind == PlanKind::kSemanticSelect) &&
      !node.children.empty()) {
    return BaseTableOf(*node.children[0]);
  }
  return nullptr;
}

Result<double> CardinalityEstimator::SemanticSelectSelectivity(
    const PlanNode& node) const {
  TablePtr base = BaseTableOf(*node.children[0]);
  if (base == nullptr || !base->schema().HasField(node.column) ||
      base->num_rows() == 0) {
    return options_.default_semantic_select_sel;
  }
  auto model_result = models_->Get(node.model_name);
  if (!model_result.ok()) return options_.default_semantic_select_sel;
  const EmbeddingModel& model = *model_result.ValueOrDie();

  CRE_ASSIGN_OR_RETURN(const Column* col, base->ColumnByName(node.column));
  if (col->type() != DataType::kString) {
    return options_.default_semantic_select_sel;
  }
  const auto& words = col->strings();
  const std::size_t n = std::min(words.size(), options_.sample_size);
  const double step = static_cast<double>(words.size()) / n;

  const std::size_t dim = model.dim();
  std::vector<float> qv(dim), wv(dim);
  const std::vector<std::string> queries =
      node.queries.empty() ? std::vector<std::string>{node.query}
                           : node.queries;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& w = words[static_cast<std::size_t>(i * step)];
    model.Embed(w, wv.data());
    for (const auto& q : queries) {
      model.Embed(q, qv.data());
      if (DotUnrolled(qv.data(), wv.data(), dim) >= node.threshold) {
        ++hits;
        break;
      }
    }
  }
  return std::max(1.0 / static_cast<double>(n + 1),
                  static_cast<double>(hits) / static_cast<double>(n));
}

Result<double> CardinalityEstimator::SemanticJoinMatchProb(
    const PlanNode& node) const {
  TablePtr lbase = BaseTableOf(*node.children[0]);
  TablePtr rbase = BaseTableOf(*node.children[1]);
  auto model_result = models_->Get(node.model_name);
  if (lbase == nullptr || rbase == nullptr || !model_result.ok() ||
      !lbase->schema().HasField(node.left_key) ||
      !rbase->schema().HasField(node.right_key) || lbase->num_rows() == 0 ||
      rbase->num_rows() == 0) {
    return options_.default_semantic_match_prob;
  }
  const EmbeddingModel& model = *model_result.ValueOrDie();
  CRE_ASSIGN_OR_RETURN(const Column* lc, lbase->ColumnByName(node.left_key));
  CRE_ASSIGN_OR_RETURN(const Column* rc, rbase->ColumnByName(node.right_key));
  if (lc->type() != DataType::kString || rc->type() != DataType::kString) {
    return options_.default_semantic_match_prob;
  }
  // Small evenly spaced samples from both sides; count matching pairs.
  const std::size_t sn = 48;
  const auto& lw = lc->strings();
  const auto& rw = rc->strings();
  const std::size_t nl = std::min(lw.size(), sn);
  const std::size_t nr = std::min(rw.size(), sn);
  const double lstep = static_cast<double>(lw.size()) / nl;
  const double rstep = static_cast<double>(rw.size()) / nr;

  const std::size_t dim = model.dim();
  std::vector<float> lm(nl * dim), rm(nr * dim);
  for (std::size_t i = 0; i < nl; ++i) {
    model.Embed(lw[static_cast<std::size_t>(i * lstep)], lm.data() + i * dim);
  }
  for (std::size_t j = 0; j < nr; ++j) {
    model.Embed(rw[static_cast<std::size_t>(j * rstep)], rm.data() + j * dim);
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < nl; ++i) {
    for (std::size_t j = 0; j < nr; ++j) {
      if (DotUnrolled(lm.data() + i * dim, rm.data() + j * dim, dim) >=
          node.threshold) {
        ++hits;
      }
    }
  }
  const double total = static_cast<double>(nl) * static_cast<double>(nr);
  return std::max(1.0 / (total * 10.0), static_cast<double>(hits) / total);
}

Result<double> CardinalityEstimator::Estimate(PlanNode* node) const {
  for (auto& c : node->children) {
    CRE_RETURN_NOT_OK(Annotate(c.get()));
  }
  switch (node->kind) {
    case PlanKind::kScan: {
      CRE_ASSIGN_OR_RETURN(TablePtr table, catalog_->Get(node->table_name));
      double rows = static_cast<double>(table->num_rows());
      if (node->predicate) {
        auto sel = EstimateSelectivity(*table, *node->predicate,
                                       options_.sample_size);
        rows *= sel.ok() ? sel.ValueOrDie()
                         : HeuristicSelectivity(*node->predicate);
      }
      return rows;
    }
    case PlanKind::kDetectScan: {
      double images = 1000.0;
      if (detectors_ != nullptr && detectors_->Contains(node->table_name)) {
        auto binding = detectors_->Get(node->table_name);
        images = static_cast<double>(binding.ValueOrDie().store->size());
        if (node->predicate) {
          TablePtr meta = binding.ValueOrDie().store->MetadataTable();
          auto sel = EstimateSelectivity(*meta, *node->predicate,
                                         options_.sample_size);
          images *= sel.ok() ? sel.ValueOrDie()
                             : HeuristicSelectivity(*node->predicate);
        }
      }
      return images * options_.avg_objects_per_image;
    }
    case PlanKind::kFilter:
      return node->children[0]->est_rows *
             HeuristicSelectivity(*node->predicate);
    case PlanKind::kProject:
    case PlanKind::kSort:
    case PlanKind::kSemanticGroupBy:
      return node->children[0]->est_rows;
    case PlanKind::kLimit:
      return std::min(node->children[0]->est_rows,
                      static_cast<double>(node->limit));
    case PlanKind::kSemanticSelect: {
      CRE_ASSIGN_OR_RETURN(double sel, SemanticSelectSelectivity(*node));
      return node->children[0]->est_rows * sel;
    }
    case PlanKind::kJoin:
      // Foreign-key heuristic: each probe row matches ~1 build row.
      return std::max(node->children[0]->est_rows,
                      node->children[1]->est_rows);
    case PlanKind::kSemanticJoin: {
      CRE_ASSIGN_OR_RETURN(double p, SemanticJoinMatchProb(*node));
      return node->children[0]->est_rows * node->children[1]->est_rows * p;
    }
    case PlanKind::kAggregate:
      return std::max(1.0, node->children[0]->est_rows * 0.1);
  }
  return Status::Internal("unreachable plan kind in Estimate");
}

Status CardinalityEstimator::Annotate(PlanNode* node) const {
  CRE_ASSIGN_OR_RETURN(double rows, Estimate(node));
  node->est_rows = std::max(0.0, rows);
  return Status::OK();
}

}  // namespace cre
