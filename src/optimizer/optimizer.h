#ifndef CRE_OPTIMIZER_OPTIMIZER_H_
#define CRE_OPTIMIZER_OPTIMIZER_H_

#include <algorithm>
#include <string>

#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/rules.h"

namespace cre {

/// Per-rule toggles, used both for configuration and for the rule
/// ablation experiment (E8).
struct OptimizerOptions {
  bool enable_filter_pushdown = true;
  bool enable_join_reorder = true;
  bool enable_data_induced_predicates = true;
  bool enable_index_selection = true;
  bool enable_column_pruning = true;
  /// LSH/IVF similarity strategies can (rarely) miss borderline matches.
  /// When false, index selection only ever picks exact strategies.
  bool allow_approximate_similarity = true;
  std::size_t dip_max_inducing_rows = 64;
  /// Worker threads the executor will run this plan with; the cost model
  /// discounts parallelizable operator costs accordingly. 0 = "let the
  /// engine fill in its pool size" (standalone optimizers treat it as 1).
  std::size_t degree_of_parallelism = 0;
  /// Expected cross-query reuse of managed vector indexes (see
  /// CostParams::index_reuse_horizon). 1 = never pay a cold index build
  /// speculatively; raise for repeated-traffic workloads so the optimizer
  /// invests in IndexManager builds that later queries hit warm.
  double index_reuse_horizon = 1.0;
  /// Multiplier on the amortized cold-build charge when IndexManager
  /// builds run asynchronously (see CostParams::background_build_discount;
  /// the engine lowers it automatically when async builds are on).
  double background_build_discount = 1.0;
  /// Minimum estimated group cardinality at which the parallel driver
  /// switches grouped aggregation from per-worker hash states (whose
  /// partials merge serially at the barrier) to the two-phase
  /// radix-partitioned form (per-partition merges fan out over the pool).
  /// Few groups merge cheaply, so the partition pass would only add
  /// routing overhead; many groups make the serial merge the tail. When
  /// the estimate is unavailable (unoptimized execution), 0 forces the
  /// radix form for every keyed aggregate. Mirrored by
  /// CostModel::AggregateCost, which costs both forms.
  std::size_t radix_agg_min_groups = 4096;
};

/// The holistic rule- and cost-based optimizer spanning relational and
/// model-based operators (paper Sec. V). Rules run in a fixed sequence:
/// pushdown -> cardinality annotation -> join reorder -> DIP -> strategy
/// selection -> pruning -> final annotation.
class Optimizer {
 public:
  Optimizer(const Catalog* catalog, const ModelRegistry* models,
            const DetectorRegistry* detectors, OptimizerOptions options = {},
            SubplanExecutor subplan_executor = nullptr,
            IndexResidencyProbe index_residency = nullptr)
      : catalog_(catalog),
        models_(models),
        options_(options),
        estimator_(catalog, models, detectors),
        cost_(models, ParamsFor(options)),
        subplan_executor_(std::move(subplan_executor)),
        index_residency_(std::move(index_residency)) {}

  /// Produces an optimized copy of `plan` (the input is not modified).
  Result<PlanPtr> Optimize(const PlanPtr& plan) const;

  /// Annotates est_rows and est_cost in place.
  Status Annotate(PlanNode* plan) const;

  /// EXPLAIN text: the optimized plan tree with annotations.
  Result<std::string> Explain(const PlanPtr& plan) const;

  const CostModel& cost_model() const { return cost_; }
  const CardinalityEstimator& estimator() const { return estimator_; }
  const OptimizerOptions& options() const { return options_; }

 private:
  static CostParams ParamsFor(const OptimizerOptions& options) {
    CostParams params;
    params.parallelism = static_cast<double>(
        std::max<std::size_t>(1, options.degree_of_parallelism));
    params.index_reuse_horizon = std::max(1.0, options.index_reuse_horizon);
    params.background_build_discount =
        std::min(1.0, std::max(0.0, options.background_build_discount));
    return params;
  }

  const Catalog* catalog_;
  const ModelRegistry* models_;
  OptimizerOptions options_;
  CardinalityEstimator estimator_;
  CostModel cost_;
  SubplanExecutor subplan_executor_;
  /// Engine-provided IndexManager residency signal (null = no manager).
  IndexResidencyProbe index_residency_;
};

}  // namespace cre

#endif  // CRE_OPTIMIZER_OPTIMIZER_H_
