#include "optimizer/plan_cache.h"

#include <chrono>
#include <cstdio>
#include <unordered_set>

namespace cre {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Value equality that also distinguishes the date tag (the variant
/// operator== treats Date(5) and Int(5) as equal).
bool SameValue(const Value& a, const Value& b) {
  return a == b && a.is_date() == b.is_date();
}

/// Exact-representation map key for a literal: type-tagged (so Date(5),
/// Int(5) and "5" never unify) and never rounded (%.17g round-trips every
/// double).
std::string ValueKey(const Value& v) {
  char buf[64];
  if (v.is_null()) return "n";
  if (v.is_date()) return "d" + std::to_string(v.AsInt64());
  if (v.is_int64()) return "i" + std::to_string(v.AsInt64());
  if (v.is_float64()) {
    std::snprintf(buf, sizeof(buf), "f%.17g", v.AsFloat64());
    return buf;
  }
  if (v.is_bool()) return v.AsBool() ? "b1" : "b0";
  if (v.is_string()) return "s" + v.AsString();
  if (v.is_vector()) {
    std::string out = "v";
    for (float f : v.AsVector()) {
      std::snprintf(buf, sizeof(buf), "%.9g,", static_cast<double>(f));
      out += buf;
    }
    return out;
  }
  return "?";
}

char ValueTypeTag(const Value& v) {
  if (v.is_null()) return 'n';
  if (v.is_date()) return 'd';
  if (v.is_int64()) return 'i';
  if (v.is_float64()) return 'f';
  if (v.is_bool()) return 'b';
  if (v.is_string()) return 's';
  if (v.is_vector()) return 'v';
  return '?';
}

// Length-prefixed string token: unambiguous under concatenation.
void AppendStr(const std::string& s, std::string* out) {
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

void AppendInt(std::int64_t v, std::string* out) {
  out->append(std::to_string(v));
  out->push_back(';');
}

/// Serializes the expression's shape: structure, operators, column names
/// and StrContains needles verbatim; literal values replaced by a typed
/// "?" and pushed onto `params` in pre-order.
void FingerprintExpr(const Expr& e, std::string* out,
                     std::vector<Value>* params) {
  out->push_back('(');
  switch (e.kind()) {
    case ExprKind::kColumnRef:
      out->push_back('c');
      AppendStr(e.column_name(), out);
      break;
    case ExprKind::kLiteral:
      out->push_back('?');
      out->push_back(ValueTypeTag(e.literal()));
      params->push_back(e.literal());
      break;
    case ExprKind::kCompare:
      out->push_back('=');
      AppendInt(static_cast<int>(e.compare_op()), out);
      break;
    case ExprKind::kArith:
      out->push_back('+');
      AppendInt(static_cast<int>(e.arith_op()), out);
      break;
    case ExprKind::kAnd:
      out->push_back('&');
      break;
    case ExprKind::kOr:
      out->push_back('|');
      break;
    case ExprKind::kNot:
      out->push_back('!');
      break;
    case ExprKind::kStrContains:
      out->push_back('~');
      AppendStr(e.str_needle(), out);
      break;
  }
  if (e.kind() != ExprKind::kColumnRef && e.kind() != ExprKind::kLiteral) {
    for (const ExprPtr& child : e.children()) {
      FingerprintExpr(*child, out, params);
    }
  }
  out->push_back(')');
}

void FingerprintNode(const PlanNode& n, std::string* out,
                     PlanCache::Shape* shape) {
  out->push_back('[');
  AppendInt(static_cast<int>(n.kind), out);
  AppendStr(n.table_name, out);
  if (n.predicate) {
    FingerprintExpr(*n.predicate, out, &shape->value_params);
  } else {
    out->push_back('_');
  }
  AppendInt(static_cast<std::int64_t>(n.projections.size()), out);
  for (const ProjectionItem& item : n.projections) {
    AppendStr(item.name, out);
    if (item.expr) {
      FingerprintExpr(*item.expr, out, &shape->value_params);
    } else {
      out->push_back('_');
    }
  }
  AppendStr(n.left_key, out);
  AppendStr(n.right_key, out);
  AppendStr(n.column, out);
  AppendStr(n.model_name, out);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%.9g;", static_cast<double>(n.threshold));
  out->append(buf);
  AppendInt(static_cast<int>(n.strategy), out);
  AppendInt(n.strategy_pinned ? 1 : 0, out);
  AppendInt(static_cast<std::int64_t>(n.top_k), out);
  // A single-query semantic select's query text is a rebindable
  // parameter; DIP multi-select lists are literal-derived and stay
  // verbatim (such plans are uncacheable anyway, the fingerprint just has
  // to be unambiguous).
  if (n.kind == PlanKind::kSemanticSelect && n.queries.empty()) {
    out->append("q?");
    shape->query_params.push_back(n.query);
  } else {
    AppendStr(n.query, out);
  }
  AppendInt(static_cast<std::int64_t>(n.queries.size()), out);
  for (const std::string& q : n.queries) AppendStr(q, out);
  if (!n.queries.empty()) ++shape->multi_selects;
  AppendInt(static_cast<std::int64_t>(n.group_keys.size()), out);
  for (const std::string& k : n.group_keys) AppendStr(k, out);
  AppendInt(static_cast<std::int64_t>(n.aggs.size()), out);
  for (const AggSpec& a : n.aggs) {
    AppendInt(static_cast<int>(a.kind), out);
    AppendStr(a.column, out);
    AppendStr(a.output_name, out);
  }
  AppendStr(n.sort_key, out);
  AppendInt(n.sort_ascending ? 1 : 0, out);
  AppendInt(static_cast<std::int64_t>(n.limit), out);
  // est_rows / est_cost / index_resident / index_residency are optimizer
  // annotations, not identity — deliberately excluded.
  AppendInt(static_cast<std::int64_t>(n.children.size()), out);
  for (const PlanPtr& child : n.children) {
    FingerprintNode(*child, out, shape);
  }
  out->push_back(']');
}

using ValueMap = std::unordered_map<std::string, Value>;
using QueryMap = std::unordered_map<std::string, std::string>;

ExprPtr RebindExpr(const ExprPtr& e, const ValueMap& values, bool* changed) {
  switch (e->kind()) {
    case ExprKind::kColumnRef:
      return e;
    case ExprKind::kLiteral: {
      auto it = values.find(ValueKey(e->literal()));
      // A literal absent from the parameter map was synthesized by an
      // optimizer rule (not user-supplied); it is shape-stable and stays.
      if (it == values.end() || SameValue(it->second, e->literal())) return e;
      *changed = true;
      return Expr::Literal(it->second);
    }
    case ExprKind::kCompare: {
      bool c = false;
      ExprPtr l = RebindExpr(e->children()[0], values, &c);
      ExprPtr r = RebindExpr(e->children()[1], values, &c);
      if (!c) return e;
      *changed = true;
      return Expr::Compare(e->compare_op(), std::move(l), std::move(r));
    }
    case ExprKind::kArith: {
      bool c = false;
      ExprPtr l = RebindExpr(e->children()[0], values, &c);
      ExprPtr r = RebindExpr(e->children()[1], values, &c);
      if (!c) return e;
      *changed = true;
      return Expr::Arith(e->arith_op(), std::move(l), std::move(r));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      bool c = false;
      std::vector<ExprPtr> kids;
      kids.reserve(e->children().size());
      for (const ExprPtr& child : e->children()) {
        kids.push_back(RebindExpr(child, values, &c));
      }
      if (!c) return e;
      *changed = true;
      ExprPtr folded = kids[0];
      for (std::size_t i = 1; i < kids.size(); ++i) {
        folded = e->kind() == ExprKind::kAnd
                     ? Expr::MakeAnd(std::move(folded), std::move(kids[i]))
                     : Expr::MakeOr(std::move(folded), std::move(kids[i]));
      }
      return folded;
    }
    case ExprKind::kNot: {
      bool c = false;
      ExprPtr child = RebindExpr(e->children()[0], values, &c);
      if (!c) return e;
      *changed = true;
      return Expr::MakeNot(std::move(child));
    }
    case ExprKind::kStrContains: {
      bool c = false;
      ExprPtr child = RebindExpr(e->children()[0], values, &c);
      if (!c) return e;
      *changed = true;
      return Expr::StrContains(std::move(child), e->str_needle());
    }
  }
  return e;
}

void RebindNode(PlanNode* n, const ValueMap& values, const QueryMap& queries) {
  bool changed = false;
  if (n->predicate) n->predicate = RebindExpr(n->predicate, values, &changed);
  for (ProjectionItem& item : n->projections) {
    if (item.expr) item.expr = RebindExpr(item.expr, values, &changed);
  }
  if (n->kind == PlanKind::kSemanticSelect && n->queries.empty()) {
    auto it = queries.find(n->query);
    if (it != queries.end()) n->query = it->second;
  }
  for (PlanPtr& child : n->children) {
    RebindNode(child.get(), values, queries);
  }
}

/// Walks an optimized plan collecting (a) the catalog stamp of every
/// scanned table, (b) the absent-class of every managed-index candidate
/// the shape exposes — index-backed-select-shaped nodes and indexable
/// semantic-join build sides, across all four index families (the choice
/// among families is also residency-driven) — and (c) the DIP
/// multi-select count.
void CollectFreshness(
    const PlanNode& n, const PlanCache::VersionProbe& version,
    const PlanCache::AbsentProbe& absent,
    std::unordered_set<std::string>* seen_tables,
    std::unordered_set<std::string>* seen_candidates,
    std::vector<std::pair<std::string, std::uint64_t>>* stamps,
    std::vector<std::pair<PlanCache::IndexCandidate, bool>>* residency,
    std::size_t* multi_selects) {
  if ((n.kind == PlanKind::kScan || n.kind == PlanKind::kDetectScan) &&
      !n.table_name.empty() && seen_tables->insert(n.table_name).second) {
    stamps->emplace_back(n.table_name, version(n.table_name));
  }
  if (!n.queries.empty()) ++*multi_selects;
  const PlanNode* scan = nullptr;
  std::string key_column;
  if (n.kind == PlanKind::kSemanticSelect && n.queries.empty() &&
      n.children.size() == 1 && n.children[0]->kind == PlanKind::kScan &&
      n.children[0]->predicate == nullptr) {
    scan = n.children[0].get();
    key_column = n.column;
  } else if (n.kind == PlanKind::kSemanticJoin) {
    scan = n.IndexableBuildScan();
    key_column = n.right_key;
  }
  if (scan != nullptr &&
      seen_candidates
          ->insert(scan->table_name + "\x1f" + key_column + "\x1f" +
                   n.model_name)
          .second) {
    static constexpr SemanticJoinStrategy kFamilies[] = {
        SemanticJoinStrategy::kLsh, SemanticJoinStrategy::kIvf,
        SemanticJoinStrategy::kHnsw, SemanticJoinStrategy::kIvfPq};
    for (SemanticJoinStrategy family : kFamilies) {
      PlanCache::IndexCandidate cand{scan->table_name, key_column,
                                     n.model_name, family};
      const bool is_absent = absent(cand);
      residency->emplace_back(std::move(cand), is_absent);
    }
  }
  for (const PlanPtr& child : n.children) {
    CollectFreshness(*child, version, absent, seen_tables, seen_candidates,
                     stamps, residency, multi_selects);
  }
}

}  // namespace

PlanCache::Shape PlanCache::Normalize(const PlanNode& plan,
                                      const std::string& knob_signature) {
  Shape shape;
  shape.fingerprint.reserve(256);
  FingerprintNode(plan, &shape.fingerprint, &shape);
  shape.fingerprint.push_back('|');
  shape.fingerprint.append(knob_signature);
  return shape;
}

PlanPtr RebindPlan(const PlanPtr& plan, const std::vector<Value>& old_values,
                   const std::vector<Value>& new_values,
                   const std::vector<std::string>& old_queries,
                   const std::vector<std::string>& new_queries) {
  if (plan == nullptr || old_values.size() != new_values.size() ||
      old_queries.size() != new_queries.size()) {
    return nullptr;
  }
  bool identical = true;
  ValueMap values;
  for (std::size_t i = 0; i < old_values.size(); ++i) {
    auto [it, inserted] =
        values.emplace(ValueKey(old_values[i]), new_values[i]);
    if (!inserted && !SameValue(it->second, new_values[i])) {
      return nullptr;  // one old value -> two new values: ambiguous
    }
    if (!SameValue(old_values[i], new_values[i])) identical = false;
  }
  QueryMap queries;
  for (std::size_t i = 0; i < old_queries.size(); ++i) {
    auto [it, inserted] = queries.emplace(old_queries[i], new_queries[i]);
    if (!inserted && it->second != new_queries[i]) return nullptr;
    if (old_queries[i] != new_queries[i]) identical = false;
  }
  if (identical) return plan;  // share the cached tree as-is
  PlanPtr rebound = plan->Clone();
  RebindNode(rebound.get(), values, queries);
  return rebound;
}

PlanCache::PlanCache(PlanCacheOptions options) : options_(options) {}

bool PlanCache::ValidLocked(const Entry& entry, const VersionProbe& version,
                            const AbsentProbe& absent) const {
  for (const auto& [table, stamp] : entry.stamps) {
    if (version(table) != stamp) return false;
  }
  for (const auto& [cand, was_absent] : entry.residency) {
    if (absent(cand) != was_absent) return false;
  }
  return true;
}

void PlanCache::EvictLocked(const Entry* keep) {
  for (;;) {
    std::size_t installed = 0;
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->planning) continue;
      ++installed;
      if (it->second.get() == keep) continue;
      if (victim == entries_.end() ||
          it->second->lru_tick < victim->second->lru_tick) {
        victim = it;
      }
    }
    if (installed <= options_.capacity || victim == entries_.end()) return;
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

PlanCache::Lookup PlanCache::AcquireOrPlan(const Shape& shape,
                                           const VersionProbe& version,
                                           const AbsentProbe& absent) {
  const auto start = std::chrono::steady_clock::now();
  Lookup out;
  EntryPtr entry;
  {
    MutexLock lock(mu_);
    bool counted_wait = false;
    for (;;) {
      auto it = entries_.find(shape.fingerprint);
      if (it == entries_.end()) {
        auto placeholder = std::make_shared<Entry>();
        entries_.emplace(shape.fingerprint, placeholder);
        ++stats_.misses;
        out.must_plan = true;
        out.ticket = true;
        return out;
      }
      if (it->second->planning) {
        if (!counted_wait) {
          counted_wait = true;
          ++stats_.single_flight_waits;
        }
        cv_.Wait(lock);
        continue;
      }
      if (!ValidLocked(*it->second, version, absent)) {
        entries_.erase(it);
        ++stats_.invalidations;
        continue;  // next pass takes the planning ticket
      }
      it->second->lru_tick = ++tick_;
      entry = it->second;
      break;
    }
  }
  // Rebind outside the lock: parameter substitution over the cached tree
  // must not serialize concurrent hits.
  PlanPtr rebound =
      RebindPlan(entry->plan, entry->value_params, shape.value_params,
                 entry->query_params, shape.query_params);
  const double elapsed = SecondsSince(start);
  MutexLock lock(mu_);
  stats_.lookup_seconds += elapsed;
  if (rebound == nullptr) {
    // Duplicate literal values diverged between the cached and looking
    // query — substitution would be guesswork. Plan standalone (no
    // ticket: the installed entry stays valid for unambiguous traffic).
    ++stats_.rebind_ambiguous;
    ++stats_.misses;
    out.must_plan = true;
    return out;
  }
  ++stats_.hits;
  out.plan = std::move(rebound);
  out.stamp = entry->stamp;
  return out;
}

void PlanCache::Install(const Shape& shape, const PlanPtr& optimized,
                        double planning_seconds, const VersionProbe& version,
                        const AbsentProbe& absent) {
  // Probe stamps/residency outside mu_ (probes take catalog/index locks).
  std::unordered_set<std::string> seen_tables;
  std::unordered_set<std::string> seen_candidates;
  std::vector<std::pair<std::string, std::uint64_t>> stamps;
  std::vector<std::pair<IndexCandidate, bool>> residency;
  std::size_t optimized_multi = 0;
  if (optimized != nullptr) {
    CollectFreshness(*optimized, version, absent, &seen_tables,
                     &seen_candidates, &stamps, &residency, &optimized_multi);
  }
  // More multi-selects than the source shape had: the DIP rule executed
  // inducing subplans at plan time, so this plan is derived from the
  // concrete literals and must not serve other parameter bindings.
  const bool cacheable =
      optimized != nullptr && optimized_multi <= shape.multi_selects;

  MutexLock lock(mu_);
  stats_.planning_seconds += planning_seconds;
  auto it = entries_.find(shape.fingerprint);
  if (!cacheable) {
    ++stats_.uncacheable;
    if (it != entries_.end() && it->second->planning) entries_.erase(it);
    cv_.NotifyAll();
    return;
  }
  EntryPtr entry;
  if (it != entries_.end()) {
    entry = it->second;
  } else {
    entry = std::make_shared<Entry>();
    entries_.emplace(shape.fingerprint, entry);
  }
  entry->plan = optimized;
  entry->value_params = shape.value_params;
  entry->query_params = shape.query_params;
  entry->stamp = 0;
  for (const auto& [table, stamp] : stamps) {
    if (stamp > entry->stamp) entry->stamp = stamp;
  }
  entry->stamps = std::move(stamps);
  entry->residency = std::move(residency);
  entry->lru_tick = ++tick_;
  entry->planning = false;
  EvictLocked(entry.get());
  cv_.NotifyAll();
}

void PlanCache::Abort(const Shape& shape) {
  MutexLock lock(mu_);
  auto it = entries_.find(shape.fingerprint);
  if (it != entries_.end() && it->second->planning) entries_.erase(it);
  cv_.NotifyAll();
}

bool PlanCache::Peek(const Shape& shape, const VersionProbe& version,
                     const AbsentProbe& absent, std::uint64_t* stamp) const {
  MutexLock lock(mu_);
  auto it = entries_.find(shape.fingerprint);
  if (it == entries_.end() || it->second->planning) return false;
  if (!ValidLocked(*it->second, version, absent)) return false;
  if (stamp != nullptr) *stamp = it->second->stamp;
  return true;
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mu_);
  Stats out = stats_;
  out.entries = 0;
  for (const auto& [fp, entry] : entries_) {
    if (!entry->planning) ++out.entries;
  }
  return out;
}

}  // namespace cre
