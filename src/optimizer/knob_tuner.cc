#include "optimizer/knob_tuner.h"

#include <algorithm>
#include <cmath>

namespace cre {

namespace {

double Ewma(double current, double sample, double alpha) {
  return current <= 0 ? sample : current + alpha * (sample - current);
}

}  // namespace

KnobTuner::KnobTuner(KnobTunerOptions options, KnobBaselines baselines)
    : options_(options),
      baselines_(baselines),
      footprints_(options.ewma_alpha),
      tuned_morsel_rows_(baselines.morsel_rows),
      tuned_radix_groups_(baselines.radix_agg_min_groups),
      tuned_horizon_(baselines.index_reuse_horizon) {}

template <typename T>
void KnobTuner::PublishLocked(std::atomic<T>* knob, T current, T candidate) {
  const double cur = static_cast<double>(current);
  const double cand = static_cast<double>(candidate);
  if (cur > 0 && std::abs(cand - cur) / cur <= options_.hysteresis) return;
  knob->store(candidate, std::memory_order_relaxed);
  refits_.fetch_add(1, std::memory_order_relaxed);
}

void KnobTuner::ObserveMorsel(std::size_t rows, double seconds) {
  if (!options_.enabled || rows == 0 || seconds <= 0) return;
  MutexLock lock(mu_);
  morsel_row_seconds_ = Ewma(morsel_row_seconds_,
                             seconds / static_cast<double>(rows),
                             options_.ewma_alpha);
  if (++morsel_samples_ < options_.min_samples) return;
  if (morsel_row_seconds_ <= 0) return;
  const double fit = options_.morsel_target_seconds / morsel_row_seconds_;
  const std::size_t candidate = std::min(
      options_.max_morsel_rows,
      std::max(options_.min_morsel_rows,
               static_cast<std::size_t>(fit)));
  PublishLocked(&tuned_morsel_rows_,
                tuned_morsel_rows_.load(std::memory_order_relaxed),
                candidate);
}

void KnobTuner::ObserveAggregate(bool radix, std::size_t input_rows,
                                 std::size_t groups,
                                 double accumulate_seconds,
                                 double merge_seconds) {
  if (!options_.enabled || input_rows == 0) return;
  MutexLock lock(mu_);
  if (radix) {
    radix_accum_per_row_ =
        Ewma(radix_accum_per_row_,
             accumulate_seconds / static_cast<double>(input_rows),
             options_.ewma_alpha);
    ++radix_samples_;
  } else {
    hash_accum_per_row_ =
        Ewma(hash_accum_per_row_,
             accumulate_seconds / static_cast<double>(input_rows),
             options_.ewma_alpha);
    if (groups > 0) {
      hash_merge_per_group_ =
          Ewma(hash_merge_per_group_,
               merge_seconds / static_cast<double>(groups),
               options_.ewma_alpha);
    }
    ++hash_samples_;
  }
  // The crossover needs both modes measured: radix wins once the hash
  // scheme's serial merge (groups * merge_s/group) exceeds the routing
  // overhead radix adds during accumulation (rows * extra accum_s/row).
  // With est_groups ~ rows at the crossover scale, groups* solves
  //   groups * hash_merge_per_group = groups * extra_accum_per_row * k
  // conservatively as extra_total / merge_per_group using the observed
  // per-row delta — i.e. the group count whose serial merge just pays
  // for the partition pass.
  if (hash_samples_ < options_.min_samples ||
      radix_samples_ < options_.min_samples) {
    return;
  }
  if (hash_merge_per_group_ <= 0) return;
  const double extra_per_row =
      std::max(0.0, radix_accum_per_row_ - hash_accum_per_row_);
  // rows-per-group at the decision point is unknown; use the observed
  // input size as the scale: the radix form pays extra_per_row over
  // `input_rows` rows, the hash form pays merge_per_group over the
  // estimated groups — they break even at:
  const double breakeven =
      extra_per_row * static_cast<double>(input_rows) / hash_merge_per_group_;
  const std::size_t candidate = std::min(
      options_.max_radix_groups,
      std::max(options_.min_radix_groups,
               static_cast<std::size_t>(breakeven)));
  PublishLocked(&tuned_radix_groups_,
                tuned_radix_groups_.load(std::memory_order_relaxed),
                candidate);
}

void KnobTuner::ObserveIndexReuse(std::uint64_t lookups,
                                  std::uint64_t distinct_keys) {
  if (!options_.enabled || distinct_keys == 0 ||
      lookups < options_.min_samples) {
    return;
  }
  MutexLock lock(mu_);
  const double fit =
      static_cast<double>(lookups) / static_cast<double>(distinct_keys);
  const double candidate = std::min(
      options_.max_reuse_horizon, std::max(options_.min_reuse_horizon, fit));
  PublishLocked(&tuned_horizon_,
                tuned_horizon_.load(std::memory_order_relaxed), candidate);
}

std::size_t KnobTuner::morsel_rows() const {
  if (!options_.enabled) return baselines_.morsel_rows;
  return tuned_morsel_rows_.load(std::memory_order_relaxed);
}

std::size_t KnobTuner::radix_agg_min_groups() const {
  if (!options_.enabled) return baselines_.radix_agg_min_groups;
  return tuned_radix_groups_.load(std::memory_order_relaxed);
}

double KnobTuner::index_reuse_horizon() const {
  if (!options_.enabled) return baselines_.index_reuse_horizon;
  return tuned_horizon_.load(std::memory_order_relaxed);
}

KnobTuner::Snapshot KnobTuner::snapshot() const {
  Snapshot out;
  out.morsel_rows = morsel_rows();
  out.radix_agg_min_groups = radix_agg_min_groups();
  out.index_reuse_horizon = index_reuse_horizon();
  out.refits = refits_.load(std::memory_order_relaxed);
  MutexLock lock(mu_);
  out.morsel_samples = morsel_samples_;
  out.morsel_row_seconds = morsel_row_seconds_;
  return out;
}

}  // namespace cre
