#ifndef CRE_OPTIMIZER_COST_MODEL_H_
#define CRE_OPTIMIZER_COST_MODEL_H_

#include "embed/model_registry.h"
#include "plan/plan_node.h"

namespace cre {

/// Abstract cost units (~nanoseconds of single-threaded work). Relational
/// and model-based operators are costed in the same currency, which is
/// what lets one optimizer choose across them (paper Sec. V).
struct CostParams {
  double row_scan = 2.0;
  double expr_eval = 6.0;
  double hash_build = 30.0;
  double hash_probe = 15.0;
  double materialize = 10.0;
  /// Per-row embedding lookup (overridden by the model's own annotation
  /// when the model is registered).
  double embed = 300.0;
  /// Per (pair, dimension) similarity cost.
  double dot_per_dim = 0.35;
  double vector_dim = 100.0;
  /// Simulated per-image inference (kept consistent with
  /// ObjectDetector::Options::cost_per_image_us = 30us).
  double detect_per_image = 30000.0;
  double avg_objects_per_image = 3.0;
  // Index strategy parameters (mirror LshOptions/IvfOptions defaults).
  double lsh_tables = 8.0;
  double lsh_bits = 12.0;
  /// Calibrated on Zipfian corpora: duplicate strings collapse into hot
  /// buckets, so multiprobe candidate lists are a large fraction of the
  /// base set...
  double lsh_candidate_fraction = 0.35;
  /// ...and each candidate costs more than one dot (bucket lookup, dedup
  /// sort, verification).
  double lsh_candidate_cost_multiplier = 2.5;
  double ivf_centroids = 64.0;
  double ivf_nprobe = 8.0;
  double ivf_kmeans_iters = 10.0;
  // IVF-PQ parameters (mirror IvfPqOptions defaults; the coarse stage
  // reuses the ivf_* knobs' structure but with its own centroid count).
  double ivfpq_centroids = 32.0;
  double ivfpq_nprobe = 8.0;
  double ivfpq_m = 8.0;
  /// PQ training sweeps 256 codewords per subspace per Lloyd iteration;
  /// training + encoding dominate the build alongside the coarse k-means.
  double ivfpq_kmeans_iters = 8.0;
  /// ADC scan cost per (row, subspace) relative to a per-dimension dot:
  /// one table load + add per subspace instead of dim/m multiply-adds —
  /// the scan runs at a fraction of the flat-scan cost per row.
  double ivfpq_adc_per_sub = 1.0;
  // HNSW parameters (mirror HnswOptions defaults).
  double hnsw_m = 16.0;
  double hnsw_ef_construction = 128.0;
  double hnsw_ef_search = 96.0;
  /// Each beam-search hop scores the expanded node's neighbors, so a probe
  /// touches roughly ef_search * hnsw_expansion_factor candidates.
  /// Fitted from bench/fig_parallel_tails measurements (8k vectors of a
  /// 64-dim hash model): 65.7us/probe = ~2930 dot-equivalents at
  /// 0.35 ns/dim -> (2930 - descent) / ef_search ~ 28. The old default of
  /// 4 undercounted the layer-0 degree (2*M neighbors scored per hop)
  /// plus queue/visited bookkeeping per candidate.
  double hnsw_expansion_factor = 28.0;
  /// Construction does strictly more per scored candidate than a probe
  /// (neighbor selection, reverse-link shrinking, multi-layer beams).
  /// Fitted from the same bench: 145us/insert vs
  /// ef_construction * expansion * dot = 80us -> ~1.8x.
  double hnsw_build_cost_multiplier = 1.8;
  /// Expected number of future queries that will reuse a managed index
  /// before its table changes. Cold builds over reusable (bare catalog
  /// scan) bases are charged build_cost / horizon: raising it makes the
  /// engine invest in indexes eagerly for repeated-traffic workloads,
  /// which later queries then hit resident at zero build cost. The
  /// default of 1 charges the full cold build (no speculative
  /// investment), so plans only diverge from the pre-IndexManager
  /// choices once an index is actually resident. Tuned per workload via
  /// OptimizerOptions::index_reuse_horizon.
  double index_reuse_horizon = 1.0;
  /// Per-row routing cost of the radix-partitioned aggregation's phase 1
  /// (hash the serialized group key, pick a partition).
  double radix_route = 2.0;
  /// Per-base-row cost of adopting a persisted on-disk index image
  /// (IndexResidency::kOnDisk): deserialization + validation hashing —
  /// pure memory/IO work, no embedding and no distance computations, so
  /// it sits orders of magnitude under the per-row build cost (HNSW
  /// builds run tens of microseconds per row; a load streams bytes).
  double index_load_per_row = 25.0;
  /// Per-base-row cost of incrementally renewing a stale-by-append
  /// index (IndexResidency::kRefreshable): clone + embed/insert only
  /// the appended slice. At the ~10% appends incremental maintenance
  /// targets, that is ~a tenth of the per-row build cost amortized over
  /// the base — small like a load, far under a rebuild; bench
  /// fig_index_persistence measures the refresh at ~8x under rebuild.
  double index_refresh_per_row = 120.0;
  /// Multiplier on the amortized cold-build charge when the IndexManager
  /// runs builds asynchronously (Engine sets < 1 with async builds on).
  /// A background build never adds latency to the requesting query — it
  /// runs at QueryPriority::kBackground while the query is served by the
  /// brute-force path — so only its steady-state CPU draw on the shared
  /// pool is charged, making the optimizer invest in indexes earlier for
  /// repeated-traffic workloads.
  double background_build_discount = 1.0;
  /// Engine worker-thread count visible to the planner. Costs of operators
  /// the morsel-driven executor can spread across cores (scans, filters,
  /// projections, semantic selects, join probes, sorts, aggregate
  /// accumulation, detection, semantic-join probing) are discounted by an
  /// Amdahl factor.
  double parallelism = 1.0;
  /// Fraction of a parallelizable operator's work that actually scales
  /// with threads — the rest is per-query coordination (morsel
  /// scheduling, shared-state builds, result concatenation and merges).
  /// Calibrated against bench/fig_parallel_tails: its per-stage timings
  /// put the parallelizable share of a 120k-row sort at ~0.89 (local
  /// sort 9.2ms + partitioned merge 7.4ms of an 18.6ms total; the
  /// residue is splitter sampling, boundary search, and scheduling), and
  /// the bench prints a direct Amdahl-inversion fit of this constant
  /// from its 1/2/4/8-thread speedups on multi-core runners. 0.9 is the
  /// rounded fit; re-fit with the bench when operator internals change.
  double parallel_fraction = 0.9;
};

/// Computes cumulative plan costs bottom-up into PlanNode::est_cost.
/// Requires est_rows to be annotated first (CardinalityEstimator).
class CostModel {
 public:
  explicit CostModel(const ModelRegistry* models, CostParams params = {})
      : models_(models), params_(params) {}

  /// Annotates est_cost over the whole tree; returns the root cost.
  double Annotate(PlanNode* node) const;

  /// Cost of constructing an index of family `strategy` over `base_rows`
  /// vectors (0 for brute force — there is nothing to build). Excludes the
  /// cost of embedding the base rows; pair with EmbedCost when the matrix
  /// is not already available.
  double SemanticIndexBuildCost(SemanticJoinStrategy strategy,
                                double base_rows) const;

  /// Cost of probing `probe_rows` queries against `base_rows` base vectors
  /// under `strategy` (brute force = exact all-pairs scan).
  double SemanticIndexProbeCost(SemanticJoinStrategy strategy,
                                double probe_rows, double base_rows) const;

  /// Build + probe under one strategy — the cold single-query cost the
  /// index-selection rule and its ablation bench compare (E6).
  double SemanticJoinStrategyCost(SemanticJoinStrategy strategy,
                                  double left_rows, double right_rows) const;

  /// Strategy cost distinguishing the IndexManager amortization states
  /// (Sec. V): `resident` charges probe only; `reusable` (a managed,
  /// bare-scan base whose index future queries can share) charges
  /// build / index_reuse_horizon; otherwise the full cold build.
  double AmortizedStrategyCost(SemanticJoinStrategy strategy,
                               double probe_rows, double base_rows,
                               bool resident, bool reusable) const;
  /// Multi-state form: kResident and kBuilding both charge probe only
  /// (an in-flight background build is sunk cost — see IndexResidency);
  /// kOnDisk charges probe + a deserialization load (index_load_per_row,
  /// far under a rebuild); kRefreshable charges probe + the incremental
  /// renewal (index_refresh_per_row); kAbsent charges the amortized
  /// build, discounted by background_build_discount when builds are
  /// asynchronous.
  double AmortizedStrategyCost(SemanticJoinStrategy strategy,
                               double probe_rows, double base_rows,
                               IndexResidency residency,
                               bool reusable) const;

  /// Full self-cost of a single-query semantic select over `base_rows`
  /// under `strategy`: brute = embed-and-score every row; index families
  /// = one query embedding + an (amortized / resident) managed index
  /// probe. Mirrors the kSemanticSelect case of plan annotation so the
  /// select-strategy rule and EXPLAIN agree.
  double SemanticSelectStrategyCost(double base_rows,
                                    const std::string& model_name,
                                    SemanticJoinStrategy strategy,
                                    bool resident) const;
  /// Three-state form (see AmortizedStrategyCost).
  double SemanticSelectStrategyCost(double base_rows,
                                    const std::string& model_name,
                                    SemanticJoinStrategy strategy,
                                    IndexResidency residency) const;

  /// Per-row embedding cost of `model_name` (the model's own annotation
  /// when registered, params().embed otherwise).
  double EmbedCost(const std::string& model_name) const;

  /// Grouped-aggregation cost: the cheaper of the two physical forms the
  /// parallel driver can run. The crossover (radix wins once the serial
  /// whole-map merge tail outweighs the per-row routing overhead) is what
  /// OptimizerOptions::radix_agg_min_groups approximates as a threshold.
  double AggregateCost(double in_rows, double out_groups) const;
  /// Per-worker hash states whose partials fold into one map serially at
  /// the barrier — cheap at low group counts, a tail at high ones.
  double AggregateMergeFormCost(double in_rows, double out_groups) const;
  /// Two-phase radix partitioning: per-row routing in phase 1 buys
  /// per-partition parallel merges in phase 2.
  double AggregateRadixFormCost(double in_rows, double out_groups) const;

  const CostParams& params() const { return params_; }

 private:
  double SelfCost(const PlanNode& node) const;
  /// Amdahl discount for work the parallel driver spreads over cores.
  double ParallelCost(double cost) const;

  const ModelRegistry* models_;
  CostParams params_;
};

}  // namespace cre

#endif  // CRE_OPTIMIZER_COST_MODEL_H_
