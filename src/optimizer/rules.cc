#include "optimizer/rules.h"

#include <algorithm>
#include <optional>
#include <set>

#include "plan/schema_inference.h"

namespace cre {

namespace {

std::set<std::string> SchemaNames(const Schema& s) {
  std::set<std::string> names;
  for (const auto& f : s.fields()) names.insert(f.name);
  return names;
}

PlanPtr WrapFilters(PlanPtr node, const std::vector<ExprPtr>& preds) {
  ExprPtr combined = CombineConjunction(preds);
  return combined ? PlanNode::Filter(std::move(node), combined) : node;
}

Result<PlanPtr> PushDown(PlanPtr node, std::vector<ExprPtr> pending,
                         const Catalog& catalog) {
  switch (node->kind) {
    case PlanKind::kFilter: {
      auto terms = SplitConjunction(node->predicate);
      pending.insert(pending.end(), terms.begin(), terms.end());
      return PushDown(node->children[0], std::move(pending), catalog);
    }
    case PlanKind::kScan:
    case PlanKind::kDetectScan: {
      CRE_ASSIGN_OR_RETURN(Schema s, InferSchema(*node, catalog));
      const auto avail = SchemaNames(s);
      std::vector<ExprPtr> attach, rest;
      for (const auto& p : pending) {
        (p->OnlyReferences(avail) ? attach : rest).push_back(p);
      }
      if (!attach.empty()) {
        ExprPtr combined = CombineConjunction(attach);
        node->predicate =
            node->predicate ? And(node->predicate, combined) : combined;
      }
      return WrapFilters(std::move(node), rest);
    }
    case PlanKind::kProject: {
      // Only push predicates whose referenced columns pass through the
      // projection unchanged (identity column refs).
      std::set<std::string> identity;
      for (const auto& item : node->projections) {
        if (item.expr->kind() == ExprKind::kColumnRef &&
            item.expr->column_name() == item.name) {
          identity.insert(item.name);
        }
      }
      std::vector<ExprPtr> push, stay;
      for (const auto& p : pending) {
        (p->OnlyReferences(identity) ? push : stay).push_back(p);
      }
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           PushDown(node->children[0], std::move(push),
                                    catalog));
      return WrapFilters(std::move(node), stay);
    }
    case PlanKind::kJoin:
    case PlanKind::kSemanticJoin: {
      CRE_ASSIGN_OR_RETURN(Schema ls, InferSchema(*node->children[0], catalog));
      CRE_ASSIGN_OR_RETURN(Schema rs, InferSchema(*node->children[1], catalog));
      const auto lnames = SchemaNames(ls);
      const auto rnames = SchemaNames(rs);
      std::vector<ExprPtr> push_left, push_right, stay;
      for (const auto& p : pending) {
        std::set<std::string> refs;
        p->CollectColumns(&refs);
        const bool in_left = p->OnlyReferences(lnames);
        bool right_only = true;
        for (const auto& r : refs) {
          if (!rnames.count(r) || lnames.count(r)) {
            // Either not a right column, or ambiguous (exists on both
            // sides, in which case the output binds it to the left).
            right_only = false;
            break;
          }
        }
        if (in_left) {
          push_left.push_back(p);
        } else if (right_only) {
          push_right.push_back(p);
        } else {
          stay.push_back(p);
        }
      }
      CRE_ASSIGN_OR_RETURN(
          node->children[0],
          PushDown(node->children[0], std::move(push_left), catalog));
      CRE_ASSIGN_OR_RETURN(
          node->children[1],
          PushDown(node->children[1], std::move(push_right), catalog));
      return WrapFilters(std::move(node), stay);
    }
    case PlanKind::kSort:
    case PlanKind::kSemanticSelect: {
      // Schema-preserving and row-set-preserving (filters commute with
      // sorts; semantic select is the more expensive operator, so
      // relational predicates slide below it).
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           PushDown(node->children[0], std::move(pending),
                                    catalog));
      return node;
    }
    case PlanKind::kSemanticGroupBy: {
      // Optimization barrier: the online clusterer is input-sensitive
      // (first member of each cluster becomes its representative), so
      // removing rows below it would change cluster annotations of the
      // surviving rows. Filters stay above; the subtree below is still
      // optimized independently.
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           PushDown(node->children[0], {}, catalog));
      return WrapFilters(std::move(node), pending);
    }
    case PlanKind::kAggregate: {
      std::set<std::string> keys(node->group_keys.begin(),
                                 node->group_keys.end());
      std::vector<ExprPtr> push, stay;
      for (const auto& p : pending) {
        (p->OnlyReferences(keys) ? push : stay).push_back(p);
      }
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           PushDown(node->children[0], std::move(push),
                                    catalog));
      return WrapFilters(std::move(node), stay);
    }
    case PlanKind::kLimit: {
      // Filters must not cross a limit (it would change which rows the
      // limit admits).
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           PushDown(node->children[0], {}, catalog));
      return WrapFilters(std::move(node), pending);
    }
  }
  return Status::Internal("unreachable plan kind in PushDown");
}

}  // namespace

Result<PlanPtr> RulePushDownFilters(PlanPtr plan, const Catalog& catalog) {
  return PushDown(plan->Clone(), {}, catalog);
}

Result<PlanPtr> RuleReorderJoinInputs(PlanPtr plan, const Catalog& catalog) {
  PlanPtr node = plan;  // trees are already private clones inside Optimize
  for (auto& c : node->children) {
    CRE_ASSIGN_OR_RETURN(c, RuleReorderJoinInputs(c, catalog));
  }
  if ((node->kind == PlanKind::kJoin ||
       node->kind == PlanKind::kSemanticJoin) &&
      node->children[0]->est_rows >= 0 && node->children[1]->est_rows >= 0 &&
      node->children[1]->est_rows > node->children[0]->est_rows) {
    // Swapping is only output-preserving when no column name appears on
    // both sides: with a collision, the suffixing would re-bind the bare
    // name to the other input.
    CRE_ASSIGN_OR_RETURN(Schema ls, InferSchema(*node->children[0], catalog));
    CRE_ASSIGN_OR_RETURN(Schema rs, InferSchema(*node->children[1], catalog));
    const auto lnames = SchemaNames(ls);
    bool disjoint = true;
    for (const auto& f : rs.fields()) {
      if (lnames.count(f.name)) {
        disjoint = false;
        break;
      }
    }
    if (disjoint) {
      // Build side (right) should be the smaller input.
      std::swap(node->children[0], node->children[1]);
      std::swap(node->left_key, node->right_key);
    }
  }
  return node;
}

namespace {

Result<PlanPtr> DeriveDip(PlanPtr node, const SubplanExecutor& executor,
                          std::size_t max_inducing_rows) {
  for (auto& c : node->children) {
    CRE_ASSIGN_OR_RETURN(c, DeriveDip(c, executor, max_inducing_rows));
  }
  if (node->kind != PlanKind::kSemanticJoin || executor == nullptr) {
    return node;
  }
  // Consider inducing from the small side into the big side.
  const double l = node->children[0]->est_rows;
  const double r = node->children[1]->est_rows;
  if (l < 0 || r < 0) return node;

  const bool induce_from_right =
      r <= static_cast<double>(max_inducing_rows) && l > 4.0 * r && l > 200.0;
  const bool induce_from_left =
      l <= static_cast<double>(max_inducing_rows) && r > 4.0 * l && r > 200.0;
  if (!induce_from_right && !induce_from_left) return node;

  const std::size_t inducing = induce_from_right ? 1 : 0;
  const std::size_t target = 1 - inducing;
  const std::string& inducing_key =
      inducing == 1 ? node->right_key : node->left_key;
  const std::string& target_key =
      inducing == 1 ? node->left_key : node->right_key;

  // Guard against re-deriving on an already-reduced side.
  if (node->children[target]->kind == PlanKind::kSemanticSelect &&
      !node->children[target]->queries.empty() &&
      node->children[target]->column == target_key) {
    return node;
  }

  CRE_ASSIGN_OR_RETURN(TablePtr side,
                       executor(node->children[inducing]->Clone()));
  if (side->num_rows() == 0 ||
      side->num_rows() > 4 * max_inducing_rows) {
    return node;  // estimate was off; leave the plan unchanged
  }
  auto col = side->ColumnByName(inducing_key);
  if (!col.ok() || col.ValueOrDie()->type() != DataType::kString) {
    return node;
  }
  std::set<std::string> distinct;
  for (const auto& s : col.ValueOrDie()->strings()) distinct.insert(s);

  auto dip = std::make_shared<PlanNode>();
  dip->kind = PlanKind::kSemanticSelect;
  dip->children = {node->children[target]};
  dip->column = target_key;
  dip->queries.assign(distinct.begin(), distinct.end());
  dip->model_name = node->model_name;
  dip->threshold = node->threshold;
  node->children[target] = dip;
  return node;
}

}  // namespace

Result<PlanPtr> RuleDataInducedPredicates(PlanPtr plan,
                                          const SubplanExecutor& executor,
                                          std::size_t max_inducing_rows) {
  return DeriveDip(plan, executor, max_inducing_rows);
}

namespace {

constexpr SemanticJoinStrategy kAllStrategies[] = {
    SemanticJoinStrategy::kBruteForce, SemanticJoinStrategy::kLsh,
    SemanticJoinStrategy::kIvf, SemanticJoinStrategy::kHnsw,
    SemanticJoinStrategy::kIvfPq};

}  // namespace

PlanPtr RulePickSemanticJoinStrategy(PlanPtr plan, const CostModel& cost,
                                     const IndexResidencyProbe& residency) {
  for (auto& c : plan->children) {
    c = RulePickSemanticJoinStrategy(c, cost, residency);
  }
  if (plan->kind == PlanKind::kSemanticJoin && !plan->strategy_pinned) {
    const double l = std::max(0.0, plan->children[0]->est_rows);
    const double r = std::max(0.0, plan->children[1]->est_rows);
    const PlanNode* scan = plan->IndexableBuildScan();
    double best = -1;
    IndexResidency best_residency = IndexResidency::kAbsent;
    for (const auto s : kAllStrategies) {
      const IndexResidency res =
          (scan != nullptr && residency != nullptr &&
           s != SemanticJoinStrategy::kBruteForce)
              ? residency(scan->table_name, plan->right_key,
                          plan->model_name, s)
              : IndexResidency::kAbsent;
      // An index the operator will actually adopt also spares the
      // build-side embedding pass: resident ones outright, on-disk
      // images (the image contains the build-side embeddings) and
      // refreshable ones (only the appended slice embeds, charged via
      // index_refresh_per_row) after their cheap renewal. Only an
      // in-flight build re-embeds: its fallback runs brute-force.
      const bool spares_embed = res == IndexResidency::kResident ||
                                res == IndexResidency::kOnDisk ||
                                res == IndexResidency::kRefreshable;
      double c = cost.AmortizedStrategyCost(s, l, r, res,
                                            /*reusable=*/scan != nullptr) +
                 (spares_embed ? 0.0 : r * cost.EmbedCost(plan->model_name));
      if (best < 0 || c < best) {
        best = c;
        plan->strategy = s;
        best_residency = res;
      }
    }
    plan->index_residency = best_residency;
    plan->index_resident = best_residency == IndexResidency::kResident;
  }
  return plan;
}

PlanPtr RulePickSemanticSelectStrategy(PlanPtr plan, const CostModel& cost,
                                       const IndexResidencyProbe& residency) {
  for (auto& c : plan->children) {
    c = RulePickSemanticSelectStrategy(c, cost, residency);
  }
  if (residency == nullptr) return plan;  // no IndexManager to serve it
  if (plan->kind != PlanKind::kSemanticSelect || plan->strategy_pinned ||
      !plan->queries.empty() || plan->children.size() != 1 ||
      plan->children[0]->kind != PlanKind::kScan ||
      plan->children[0]->predicate != nullptr) {
    return plan;
  }
  const double base = std::max(0.0, plan->children[0]->est_rows);
  double best = -1;
  for (const auto s : kAllStrategies) {
    const IndexResidency res =
        s != SemanticJoinStrategy::kBruteForce
            ? residency(plan->children[0]->table_name, plan->column,
                        plan->model_name, s)
            : IndexResidency::kAbsent;
    const double c =
        cost.SemanticSelectStrategyCost(base, plan->model_name, s, res);
    if (best < 0 || c < best) {
      best = c;
      plan->strategy = s;
      plan->index_residency = res;
      plan->index_resident = res == IndexResidency::kResident;
    }
  }
  return plan;
}

namespace {

/// Maps a required output name back to a child-side name across join
/// suffixing ("x_r" produced from right-side "x").
void AddRequiredForSide(const std::set<std::string>& required,
                        const std::set<std::string>& side_names,
                        bool strip_suffix, std::set<std::string>* out) {
  for (const auto& name : required) {
    if (side_names.count(name)) {
      out->insert(name);
      continue;
    }
    if (strip_suffix && name.size() > 2 &&
        name.compare(name.size() - 2, 2, "_r") == 0) {
      std::string base = name.substr(0, name.size() - 2);
      // Strip repeated suffixes conservatively one layer at a time.
      if (side_names.count(base)) out->insert(base);
    }
  }
}

Result<PlanPtr> Prune(PlanPtr node,
                      const std::optional<std::set<std::string>>& required,
                      const Catalog& catalog) {
  switch (node->kind) {
    case PlanKind::kScan: {
      if (!required.has_value()) return node;
      CRE_ASSIGN_OR_RETURN(Schema s, InferSchema(*node, catalog));
      const auto avail = SchemaNames(s);
      std::set<std::string> keep;
      for (const auto& n : *required) {
        if (avail.count(n)) keep.insert(n);
      }
      if (keep.empty() || keep.size() >= avail.size()) return node;
      std::vector<ProjectionItem> items;
      for (const auto& f : s.fields()) {
        if (keep.count(f.name)) items.push_back({f.name, Col(f.name)});
      }
      return PlanNode::Project(std::move(node), std::move(items));
    }
    case PlanKind::kDetectScan:
      return node;
    case PlanKind::kFilter: {
      std::optional<std::set<std::string>> child_req = required;
      if (child_req.has_value()) {
        node->predicate->CollectColumns(&*child_req);
      }
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           Prune(node->children[0], child_req, catalog));
      return node;
    }
    case PlanKind::kProject: {
      std::set<std::string> child_req;
      for (const auto& item : node->projections) {
        item.expr->CollectColumns(&child_req);
      }
      CRE_ASSIGN_OR_RETURN(
          node->children[0],
          Prune(node->children[0], std::make_optional(child_req), catalog));
      return node;
    }
    case PlanKind::kJoin:
    case PlanKind::kSemanticJoin: {
      CRE_ASSIGN_OR_RETURN(Schema ls, InferSchema(*node->children[0], catalog));
      CRE_ASSIGN_OR_RETURN(Schema rs, InferSchema(*node->children[1], catalog));
      const auto lnames = SchemaNames(ls);
      const auto rnames = SchemaNames(rs);
      std::optional<std::set<std::string>> lreq, rreq;
      if (required.has_value()) {
        std::set<std::string> l, r;
        AddRequiredForSide(*required, lnames, false, &l);
        AddRequiredForSide(*required, rnames, true, &r);
        l.insert(node->left_key);
        r.insert(node->right_key);
        lreq = std::move(l);
        rreq = std::move(r);
      }
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           Prune(node->children[0], lreq, catalog));
      CRE_ASSIGN_OR_RETURN(node->children[1],
                           Prune(node->children[1], rreq, catalog));
      return node;
    }
    case PlanKind::kSemanticSelect: {
      // An index-backed select resolves row ids against the whole base
      // table, so its scan must stay bare — no projection may narrow or
      // reorder it (upstream operators re-project as needed).
      if (node->IndexBackedSelect()) return node;
      std::optional<std::set<std::string>> child_req = required;
      if (child_req.has_value()) child_req->insert(node->column);
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           Prune(node->children[0], child_req, catalog));
      return node;
    }
    case PlanKind::kSemanticGroupBy: {
      std::optional<std::set<std::string>> child_req = required;
      if (child_req.has_value()) {
        child_req->insert(node->column);
        child_req->erase("cluster_id");
        child_req->erase("cluster_rep");
      }
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           Prune(node->children[0], child_req, catalog));
      return node;
    }
    case PlanKind::kAggregate: {
      std::set<std::string> child_req(node->group_keys.begin(),
                                      node->group_keys.end());
      for (const auto& a : node->aggs) {
        if (a.kind != AggKind::kCount) child_req.insert(a.column);
      }
      CRE_ASSIGN_OR_RETURN(
          node->children[0],
          Prune(node->children[0], std::make_optional(child_req), catalog));
      return node;
    }
    case PlanKind::kSort: {
      std::optional<std::set<std::string>> child_req = required;
      if (child_req.has_value()) child_req->insert(node->sort_key);
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           Prune(node->children[0], child_req, catalog));
      return node;
    }
    case PlanKind::kLimit: {
      CRE_ASSIGN_OR_RETURN(node->children[0],
                           Prune(node->children[0], required, catalog));
      return node;
    }
  }
  return Status::Internal("unreachable plan kind in Prune");
}

}  // namespace

Result<PlanPtr> RulePruneColumns(PlanPtr plan, const Catalog& catalog) {
  return Prune(plan, std::nullopt, catalog);
}

}  // namespace cre
