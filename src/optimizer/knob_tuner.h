#ifndef CRE_OPTIMIZER_KNOB_TUNER_H_
#define CRE_OPTIMIZER_KNOB_TUNER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "core/mutex.h"
#include "exec/footprint.h"

namespace cre {

/// Feedback calibration knobs (see KnobTuner).
struct KnobTunerOptions {
  /// Master switch. Disabled, every read returns its engine baseline and
  /// observations are dropped at a branch.
  bool enabled = true;
  /// Target wall time of one morsel pipeline. Morsel sizing aims each
  /// task at this length: long enough to amortize per-task scheduling,
  /// short enough that one morsel never delays a high-priority query by
  /// more than ~a couple of ms (scheduler preemption granularity).
  double morsel_target_seconds = 0.002;
  std::size_t min_morsel_rows = 1024;
  std::size_t max_morsel_rows = 256 * 1024;
  /// Clamps for the refit radix-aggregation crossover.
  std::size_t min_radix_groups = 256;
  std::size_t max_radix_groups = 1 << 20;
  /// Clamps for the refit index reuse horizon.
  double min_reuse_horizon = 1.0;
  double max_reuse_horizon = 16.0;
  /// A refit publishes only when it moves a knob by more than this
  /// relative fraction of its current effective value — adjacent queries
  /// see stable knobs, not a twitching control loop.
  double hysteresis = 0.25;
  /// Smoothing factor for every observation EWMA.
  double ewma_alpha = 0.2;
  /// Observations of a signal required before its first refit.
  std::uint64_t min_samples = 8;
};

/// Baseline knob values the tuner starts from (and returns while
/// disabled/unconverged). The engine fills these from its configured
/// EngineOptions / OptimizerOptions.
struct KnobBaselines {
  std::size_t morsel_rows = 8 * 1024;
  std::size_t radix_agg_min_groups = 4096;
  double index_reuse_horizon = 1.0;
};

/// The engine's knob control loop: turns the stats/telemetry plumbing
/// from a dashboard into feedback. Execution paths push observations
/// (per-morsel wall time, aggregate mode timings, IndexManager per-key
/// hit rates, operator footprints); the tuner re-fits three execution
/// knobs with EWMA smoothing, hysteresis, and hard clamps; the engine
/// reads the tuned values when building per-query OptimizerOptions and
/// the parallel driver:
///
///  - morsel_rows: rows/morsel = morsel_target_seconds / observed
///    seconds-per-row, so task granularity tracks the workload's actual
///    per-row cost instead of a fixed 8k;
///  - radix_agg_min_groups: the hash-vs-radix crossover where the hash
///    scheme's serial merge (groups x observed merge-cost/group) starts
///    losing to the radix scheme's routing overhead (rows x observed
///    extra accumulate-cost/row). Needs both modes observed;
///  - index_reuse_horizon: observed IndexManager lookups per distinct
///    key — the measured form of "how many queries amortize one build".
///
/// Publication is lock-free (relaxed atomics); readers on any thread pay
/// one load. Observation folding takes a small mutex — all observation
/// sites are per-morsel/per-operator, not per-row.
class KnobTuner {
 public:
  KnobTuner(KnobTunerOptions options, KnobBaselines baselines);

  // ---- observations (no-ops when disabled) ----

  /// One completed morsel pipeline: `rows` input rows in `seconds`.
  void ObserveMorsel(std::size_t rows, double seconds);

  /// One completed parallel grouped aggregation: which mode ran, its
  /// input rows / output groups, and the phase timings the driver split.
  void ObserveAggregate(bool radix, std::size_t input_rows,
                        std::size_t groups, double accumulate_seconds,
                        double merge_seconds);

  /// IndexManager reuse so far: cumulative lookups over distinct keys.
  void ObserveIndexReuse(std::uint64_t lookups, std::uint64_t distinct_keys);

  // ---- tuned reads (lock-free; baseline until a refit published) ----

  std::size_t morsel_rows() const;
  std::size_t radix_agg_min_groups() const;
  double index_reuse_horizon() const;

  /// Bytes/row calibrations for the governor charge sites, fed directly
  /// by the operators (hash-join build, sort, aggregation state).
  FootprintCalibrator* footprints() { return &footprints_; }
  const FootprintCalibrator* footprints() const { return &footprints_; }

  /// Point-in-time view for metrics/docs/tests.
  struct Snapshot {
    std::size_t morsel_rows = 0;
    std::size_t radix_agg_min_groups = 0;
    double index_reuse_horizon = 0;
    std::uint64_t refits = 0;          ///< published knob changes
    std::uint64_t morsel_samples = 0;
    double morsel_row_seconds = 0;     ///< EWMA seconds/row
  };
  Snapshot snapshot() const;

  const KnobTunerOptions& options() const { return options_; }
  const KnobBaselines& baselines() const { return baselines_; }

 private:
  /// Publishes `candidate` into `knob` iff it clears the hysteresis band
  /// around the current effective value.
  template <typename T>
  void PublishLocked(std::atomic<T>* knob, T current, T candidate)
      CRE_REQUIRES(mu_);

  KnobTunerOptions options_;
  KnobBaselines baselines_;
  FootprintCalibrator footprints_;

  mutable Mutex mu_;  // guards the EWMA fitting state below
  double morsel_row_seconds_ CRE_GUARDED_BY(mu_) = 0;
  std::uint64_t morsel_samples_ CRE_GUARDED_BY(mu_) = 0;
  /// hash mode: merge s / group
  double hash_merge_per_group_ CRE_GUARDED_BY(mu_) = 0;
  std::uint64_t hash_samples_ CRE_GUARDED_BY(mu_) = 0;
  /// hash mode: accumulate s / row
  double hash_accum_per_row_ CRE_GUARDED_BY(mu_) = 0;
  /// radix mode: accumulate s / row
  double radix_accum_per_row_ CRE_GUARDED_BY(mu_) = 0;
  std::uint64_t radix_samples_ CRE_GUARDED_BY(mu_) = 0;

  // Published knobs (atomics read from any thread).
  std::atomic<std::size_t> tuned_morsel_rows_;
  std::atomic<std::size_t> tuned_radix_groups_;
  std::atomic<double> tuned_horizon_;
  std::atomic<std::uint64_t> refits_{0};
};

}  // namespace cre

#endif  // CRE_OPTIMIZER_KNOB_TUNER_H_
