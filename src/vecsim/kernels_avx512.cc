// AVX-512F kernel bodies. Compiled with -mavx512f via per-file CMake
// compile options; only reached after CpuSupportsAvx512() (kernels.cc),
// so AVX2-only and older hosts never execute these instructions.

#include <immintrin.h>

#include "vecsim/kernels_internal.h"

namespace cre::detail {

namespace {

constexpr std::size_t kPrefetchRows = 4;

// Manual lane reduction: _mm512_reduce_add_ps (and the extract
// intrinsics) expand through _mm*_undefined_* placeholders and trip
// gcc's -W(maybe-)uninitialized. A spill to the stack sidesteps the
// intrinsic expansion entirely; gcc turns the fixed-trip loop into a
// short shuffle/add sequence.
inline float ReduceAdd(__m512 v) {
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, v);
  float s = 0.f;
  for (int i = 0; i < 16; ++i) s += lanes[i];
  return s;
}

}  // namespace

float DotAvx512Impl(const float* a, const float* b, std::size_t dim) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 32 <= dim; i += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                           _mm512_loadu_ps(b + i + 16), acc1);
  }
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i),
                           acc0);
  }
  if (i < dim) {
    // Masked tail: one 16-lane op covers the remaining dim % 16 floats.
    const __mmask16 m =
        static_cast<__mmask16>((1u << (dim - i)) - 1u);
    acc0 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(m, a + i),
                           _mm512_maskz_loadu_ps(m, b + i), acc0);
  }
  return ReduceAdd(_mm512_add_ps(acc0, acc1));
}

void DotBatchAvx512Impl(const float* query, const float* base, std::size_t n,
                        std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      const float* next = base + (i + kPrefetchRows) * dim;
      _mm_prefetch(reinterpret_cast<const char*>(next), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(next + 16), _MM_HINT_T0);
    }
    out[i] = DotAvx512Impl(query, base + i * dim, dim);
  }
}

void DotBatchGatherAvx512Impl(const float* query, const float* base,
                              const std::uint32_t* ids, std::size_t n,
                              std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      const float* next = base + ids[i + kPrefetchRows] * dim;
      _mm_prefetch(reinterpret_cast<const char*>(next), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(next + 16), _MM_HINT_T0);
    }
    out[i] = DotAvx512Impl(query, base + ids[i] * dim, dim);
  }
}

}  // namespace cre::detail
