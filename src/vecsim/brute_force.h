#ifndef CRE_VECSIM_BRUTE_FORCE_H_
#define CRE_VECSIM_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "core/cancel.h"
#include "core/thread_pool.h"
#include "vecsim/codec.h"
#include "vecsim/kernels.h"
#include "vecsim/top_k.h"
#include "vecsim/vector_index.h"

namespace cre {

/// One (left row, right row, score) result of a similarity join.
struct MatchPair {
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  float score = 0.f;
};

/// Options controlling the brute-force similarity join kernels.
struct BruteForceOptions {
  KernelVariant variant = KernelVariant::kUnrolled;
  TaskRunner* pool = nullptr;  ///< parallel over left rows when set
  /// Cooperative cancellation, polled between left rows. A flipped flag
  /// makes the scan stop early and return a partial result — the caller
  /// (who owns the flag) must check it afterwards and discard the
  /// matches, unwinding with Status::Cancelled.
  const CancelFlag* cancel = nullptr;
};

/// Exact all-pairs similarity join over two row-major, unit-normalized
/// vector sets: emits every pair with dot >= threshold. This is the
/// "tight C++ loop" rung of Figure 4; variant/pool toggle the SIMD and
/// scale-up rungs. Each left row scores the right side through the
/// one-to-many batch kernel.
std::vector<MatchPair> SimilarityJoinBrute(
    const float* left, std::size_t n_left, const float* right,
    std::size_t n_right, std::size_t dim, float threshold,
    const BruteForceOptions& options = {});

/// FP16 variant of the join (operands stored as half precision).
std::vector<MatchPair> SimilarityJoinBruteHalf(
    const std::uint16_t* left, std::size_t n_left, const std::uint16_t* right,
    std::size_t n_right, std::size_t dim, float threshold,
    TaskRunner* pool = nullptr);

/// Exact flat index: linear scan with the best available batch kernel.
/// With a quantized codec the scan scores the compressed rows
/// asymmetrically, over-fetches rescore_factor * k candidates, and
/// re-ranks them with exact fp32 arithmetic over the decoded vectors.
class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(KernelVariant variant = BestKernelVariant(),
                     QuantizationOptions quant = {})
      : variant_(variant), quant_(quant) {
    store_.SetVariant(variant);
  }

  Status Build(const float* data, std::size_t n, std::size_t dim) override;
  Status Add(const float* data, std::size_t n, std::size_t dim) override;
  std::unique_ptr<VectorIndex> Clone() const override {
    return std::make_unique<FlatIndex>(*this);
  }
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;
  void RangeSearch(const float* query, float threshold,
                   std::vector<ScoredId>* out) const override;
  std::vector<ScoredId> TopK(const float* query, std::size_t k) const override;

  std::size_t size() const override { return n_; }
  std::size_t dim() const override { return dim_; }
  std::string name() const override { return "flat"; }
  std::size_t MemoryBytes() const override { return store_.MemoryBytes(); }

  VectorCodecKind codec() const { return store_.kind(); }

 private:
  KernelVariant variant_;
  QuantizationOptions quant_;
  VectorStore store_;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
};

}  // namespace cre

#endif  // CRE_VECSIM_BRUTE_FORCE_H_
