#ifndef CRE_VECSIM_IVF_INDEX_H_
#define CRE_VECSIM_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/cancel.h"
#include "vecsim/kernels.h"
#include "vecsim/vector_index.h"

namespace cre {

/// IVF-Flat index (Faiss-style): k-means partitions the base set into
/// `num_centroids` inverted lists; queries scan the `nprobe` nearest lists
/// and verify exactly. Models the "index-based access for similarity
/// search [20]" the paper wants the optimizer to cost (Sec. IV/V).
struct IvfOptions {
  std::size_t num_centroids = 64;
  std::size_t nprobe = 8;
  std::size_t kmeans_iters = 10;
  std::uint64_t seed = 11;
  /// Cooperative cancellation, polled every few rows inside the
  /// posting-list scans (RangeSearch/TopK) and between k-means
  /// iterations during Build. A flipped flag makes a scan stop early and
  /// return a partial result; the caller (who owns the flag) must check
  /// it afterwards and discard the output, unwinding with
  /// Status::Cancelled. Not serialized.
  const CancelFlag* cancel = nullptr;
};

class IvfIndex : public VectorIndex {
 public:
  explicit IvfIndex(IvfOptions options = {}) : options_(options) {}

  Status Build(const float* data, std::size_t n, std::size_t dim) override;
  /// Incremental append: new vectors join the inverted list of their
  /// nearest existing centroid (standard IVF maintenance — centroids are
  /// not retrained, so heavy drift eventually warrants a rebuild).
  Status Add(const float* data, std::size_t n, std::size_t dim) override;
  std::unique_ptr<VectorIndex> Clone() const override {
    return std::make_unique<IvfIndex>(*this);
  }
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;
  void RangeSearch(const float* query, float threshold,
                   std::vector<ScoredId>* out) const override;
  std::vector<ScoredId> TopK(const float* query, std::size_t k) const override;

  std::size_t size() const override { return n_; }
  std::size_t dim() const override { return dim_; }
  std::string name() const override { return "ivf"; }
  std::size_t MemoryBytes() const override;

  std::size_t num_centroids() const { return centroid_count_; }

 private:
  /// Indices of the nprobe nearest centroids to `query`.
  std::vector<std::uint32_t> NearestCentroids(const float* query,
                                              std::size_t nprobe) const;

  IvfOptions options_;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::size_t centroid_count_ = 0;
  std::vector<float> data_;
  std::vector<float> centroids_;
  std::vector<std::vector<std::uint32_t>> lists_;
};

}  // namespace cre

#endif  // CRE_VECSIM_IVF_INDEX_H_
