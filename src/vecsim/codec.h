#ifndef CRE_VECSIM_CODEC_H_
#define CRE_VECSIM_CODEC_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/status.h"
#include "vecsim/kernels.h"

namespace cre {

/// On-memory encoding of an index's base vectors. fp16 halves the
/// footprint at ~1e-3 relative error; int8 quarters it with a per-vector
/// scale+offset affine code. Scoring is asymmetric — the query stays fp32
/// while the base side streams its compressed form — so the accuracy loss
/// is one-sided and no decode pass is needed on the hot path.
enum class VectorCodecKind : std::uint8_t {
  kFp32 = 0,
  kFp16 = 1,
  kInt8 = 2,
};

const char* VectorCodecName(VectorCodecKind k);

/// Per-index quantization knobs (paper Sec. VI: precision is a late-bound
/// physical property, not part of the logical plan).
struct QuantizationOptions {
  VectorCodecKind codec = VectorCodecKind::kFp32;
  /// Quantized searches over-fetch rescore_factor * k candidates and
  /// re-rank them with exact fp32 arithmetic over the decoded vectors, so
  /// ordering errors inside the top-k band are corrected.
  std::size_t rescore_factor = 3;
};

/// Codec-encoded, append-only row-major vector storage shared by the index
/// families. All scoring entry points are batched and route to the
/// runtime-dispatched SIMD kernels.
class VectorStore {
 public:
  /// Drops all rows and fixes (codec, dim) for subsequent Appends.
  void Reset(VectorCodecKind kind, std::size_t dim);

  /// Encodes and appends `n` fp32 rows.
  void Append(const float* data, std::size_t n);

  VectorCodecKind kind() const { return kind_; }
  std::size_t size() const { return n_; }
  std::size_t dim() const { return dim_; }
  bool quantized() const { return kind_ != VectorCodecKind::kFp32; }

  /// Per-query precompute for int8 scoring (dot decomposes into
  /// scale * <q, codes> + offset * sum(q)); 0 for other codecs.
  float QueryPrecompute(const float* query) const;

  /// out[i] = score(query, row first+i) for i in [0, count).
  void ScoreRange(const float* query, float query_pre, std::size_t first,
                  std::size_t count, float* out) const;

  /// out[i] = score(query, row ids[i]).
  void ScoreIds(const float* query, float query_pre, const std::uint32_t* ids,
                std::size_t count, float* out) const;

  float ScoreOne(const float* query, float query_pre, std::uint32_t id) const;

  /// Reconstructs row `id` as fp32 (exact for kFp32).
  void Decode(std::uint32_t id, float* out) const;

  /// Exact fp32 dot against the decoded row — the rescore primitive.
  float RescoreOne(const float* query, std::uint32_t id,
                   float* scratch) const;

  /// Scoring error bound of this codec on unit vectors; quantized range
  /// searches widen their threshold by this much before the exact filter.
  float ScoreSlack() const;

  std::size_t MemoryBytes() const;

  /// Codec payload (kind + blobs); the caller's versioned image wraps it.
  Status Save(std::ostream& out) const;
  /// Reads and validates a payload for exactly (expected_n, expected_dim).
  Status Load(std::istream& in, std::size_t expected_n,
              std::size_t expected_dim);

  /// Raw fp32 rows; valid only when kind() == kFp32 (the families that do
  /// their own math — k-means, hyperplane hashing — stay full precision).
  const float* Fp32Data() const { return fp32_.data(); }

  /// Kernel variant used for fp32 scoring (quantized codecs dispatch
  /// internally); defaults to the widest supported.
  void SetVariant(KernelVariant v) { variant_ = v; }

 private:
  VectorCodecKind kind_ = VectorCodecKind::kFp32;
  KernelVariant variant_ = BestKernelVariant();
  std::size_t dim_ = 0;
  std::size_t n_ = 0;
  std::vector<float> fp32_;
  std::vector<std::uint16_t> fp16_;
  std::vector<std::int8_t> int8_;
  std::vector<float> scale_;   ///< per-vector, int8 only
  std::vector<float> offset_;  ///< per-vector, int8 only
};

}  // namespace cre

#endif  // CRE_VECSIM_CODEC_H_
