#ifndef CRE_VECSIM_INDEX_IO_H_
#define CRE_VECSIM_INDEX_IO_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/status.h"

namespace cre {
namespace vecio {

/// Little binary (de)serialization helpers shared by every VectorIndex
/// family's Save/Load. The format is intentionally dumb: fixed-width PODs
/// and length-prefixed arrays, no alignment games, no compression. Every
/// read is bounds-checked so a truncated or corrupted file surfaces as a
/// Status (the IndexManager then falls back to a clean rebuild) instead of
/// garbage state or an out-of-bounds read.

inline Status WriteRaw(std::ostream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out.good()) return Status::Internal("index save: write failed");
  return Status::OK();
}

template <typename T>
Status WritePod(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  return WriteRaw(out, &v, sizeof(T));
}

// WriteString/WriteVec live below the size caps they share with the
// readers — see the cap comment there.

inline Status ReadRaw(std::istream& in, void* data, std::size_t n) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) {
    return Status::OutOfRange("index load: truncated file");
  }
  return Status::OK();
}

template <typename T>
Status ReadPod(std::istream& in, T* v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  return ReadRaw(in, v, sizeof(T));
}

/// Guards against hostile/corrupt length prefixes: serialized strings
/// are column values (short), arrays top out at a big index's vector
/// data. Reads additionally grow in bounded chunks, so a lying prefix
/// over a truncated file fails at the first missing chunk instead of
/// ballooning memory up front. Writes enforce the SAME caps, so Save
/// can never produce an image that every future Load rejects.
constexpr std::uint64_t kMaxStringLen = 1ull << 20;
constexpr std::uint64_t kMaxArrayElems = 1ull << 28;
constexpr std::size_t kReadChunkElems = 1u << 20;

inline Status WriteString(std::ostream& out, const std::string& s) {
  if (s.size() > kMaxStringLen) {
    return Status::InvalidArgument("index save: string exceeds format cap");
  }
  CRE_RETURN_NOT_OK(WritePod<std::uint64_t>(out, s.size()));
  return WriteRaw(out, s.data(), s.size());
}

template <typename T>
Status WriteVec(std::ostream& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD vectors only");
  if (v.size() > kMaxArrayElems) {
    return Status::InvalidArgument("index save: array exceeds format cap");
  }
  CRE_RETURN_NOT_OK(WritePod<std::uint64_t>(out, v.size()));
  return WriteRaw(out, v.data(), v.size() * sizeof(T));
}
/// Cap on serialized vector dimensionality. Together with kMaxArrayElems
/// this keeps every n*dim-style consistency check in the family Load()s
/// far from uint64 wraparound — a crafted header whose product wraps to
/// a "consistent" small value must be rejected, not trusted.
constexpr std::uint64_t kMaxDim = 1ull << 16;

inline Status ReadString(std::istream& in, std::string* s) {
  std::uint64_t n = 0;
  CRE_RETURN_NOT_OK(ReadPod(in, &n));
  if (n > kMaxStringLen) {
    return Status::InvalidArgument("index load: implausible string length");
  }
  s->resize(static_cast<std::size_t>(n));
  return ReadRaw(in, s->empty() ? nullptr : &(*s)[0],
                 static_cast<std::size_t>(n));
}

template <typename T>
Status ReadVec(std::istream& in, std::vector<T>* v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD vectors only");
  std::uint64_t n = 0;
  CRE_RETURN_NOT_OK(ReadPod(in, &n));
  if (n > kMaxArrayElems) {
    return Status::InvalidArgument("index load: implausible array length");
  }
  v->clear();
  std::size_t remaining = static_cast<std::size_t>(n);
  while (remaining > 0) {
    const std::size_t take = remaining < kReadChunkElems ? remaining
                                                         : kReadChunkElems;
    const std::size_t old = v->size();
    v->resize(old + take);
    CRE_RETURN_NOT_OK(ReadRaw(in, v->data() + old, take * sizeof(T)));
    remaining -= take;
  }
  return Status::OK();
}

/// Per-family format tag: magic + format version, written first so a
/// mismatched or foreign file is rejected before any payload reads.
inline Status WriteTag(std::ostream& out, std::uint32_t magic,
                       std::uint32_t version) {
  CRE_RETURN_NOT_OK(WritePod(out, magic));
  return WritePod(out, version);
}

inline Status ExpectTag(std::istream& in, std::uint32_t magic,
                        std::uint32_t version, const char* what) {
  std::uint32_t m = 0, v = 0;
  CRE_RETURN_NOT_OK(ReadPod(in, &m));
  CRE_RETURN_NOT_OK(ReadPod(in, &v));
  if (m != magic) {
    return Status::InvalidArgument(std::string("index load: bad magic for ") +
                                   what);
  }
  if (v != version) {
    return Status::InvalidArgument(
        std::string("index load: unsupported format version for ") + what);
  }
  return Status::OK();
}

}  // namespace vecio
}  // namespace cre

#endif  // CRE_VECSIM_INDEX_IO_H_
