#ifndef CRE_VECSIM_HNSW_INDEX_H_
#define CRE_VECSIM_HNSW_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/cancel.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "vecsim/codec.h"
#include "vecsim/kernels.h"
#include "vecsim/vector_index.h"

namespace cre {

/// HNSW graph index (Malkov & Yashunin): a layered proximity graph where
/// upper layers are exponentially sparser "express lanes" and layer 0
/// holds every vector. Queries greedily descend the hierarchy and run a
/// best-first beam search at layer 0. Unlike IVF/LSH this needs no global
/// training pass, degrades gracefully on unclustered data, and gives a
/// tunable recall/latency knob (`ef_search`) at query time — the index
/// family the IndexManager prefers for cross-query reuse, where build cost
/// is paid once and amortized over many probes.
struct HnswOptions {
  /// Max out-degree per node on layers > 0 (layer 0 allows 2*M).
  std::size_t M = 16;
  /// Beam width while inserting (quality of the construction).
  std::size_t ef_construction = 128;
  /// Beam width while querying (recall/latency knob).
  std::size_t ef_search = 96;
  std::uint64_t seed = 13;
  /// RangeSearch explores graph nodes scoring >= threshold - range_slack,
  /// reporting only those >= threshold: the slack lets the walk cross
  /// small similarity dips inside a threshold region without admitting
  /// false positives (every hit is exactly verified).
  float range_slack = 0.05f;
  /// Worker pool for construction. Build always runs the *canonical
  /// batched* insertion schedule — bootstrap incrementally, then insert
  /// id-ordered batches whose candidate searches read a frozen graph
  /// snapshot and whose link updates apply in canonical order — so the
  /// resulting graph is a pure function of (data, options) and
  /// byte-identical for any pool size, including none. The pool only
  /// decides whether each batch's searches and per-node link updates run
  /// concurrently.
  TaskRunner* build_pool = nullptr;
  /// Nodes inserted one-at-a-time before batching starts (a tiny frozen
  /// graph would give batch members too little structure to search, and
  /// small builds are too cheap to be worth batching at all — below this
  /// size construction is exactly the sequential algorithm).
  std::size_t build_bootstrap = 512;
  /// Cooperative cancellation for construction. Build/Add poll this
  /// between bootstrap inserts and between batches — not just at the
  /// morsel/segment boundaries the drivers poll — so cancelling a query
  /// that is cold-building a large graph takes effect within one batch,
  /// not after the entire multi-second build. Not serialized.
  const CancelFlag* cancel = nullptr;
  /// Base-vector codec. With a quantized codec both construction and
  /// search score the compressed rows asymmetrically (the graph stays a
  /// pure function of (data, options) — codec included), and TopK
  /// over-fetches rescore_factor * k beam results for an exact fp32
  /// re-rank over the decoded vectors.
  QuantizationOptions quant;
};

class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(HnswOptions options = {}) : options_(options) {}

  Status Build(const float* data, std::size_t n, std::size_t dim) override;
  /// True incremental insertion: appends `n` vectors to the built graph
  /// with the exact sequential Malkov-Yashunin insert the batched build
  /// canonicalizes, drawing each new node's level from the continuation
  /// of the build's seeded RNG stream. Deterministic: (graph state,
  /// appended data) fully determine the result, so concurrent refreshers
  /// starting from the same snapshot produce identical graphs. The
  /// IndexManager's append-refresh path clones the resident graph and
  /// Adds into the clone (copy-on-write) — far cheaper than a rebuild
  /// because the existing nodes' beam searches are not repeated.
  Status Add(const float* data, std::size_t n, std::size_t dim) override;
  std::unique_ptr<VectorIndex> Clone() const override {
    return std::make_unique<HnswIndex>(*this);
  }
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;
  void RangeSearch(const float* query, float threshold,
                   std::vector<ScoredId>* out) const override;
  std::vector<ScoredId> TopK(const float* query, std::size_t k) const override;

  std::size_t size() const override { return n_; }
  std::size_t dim() const override { return dim_; }
  std::string name() const override { return "hnsw"; }
  std::size_t MemoryBytes() const override;

  int max_level() const { return max_level_; }
  VectorCodecKind codec() const { return store_.kind(); }

  /// Order-sensitive digest of the whole graph (levels, adjacency, entry
  /// point): equal checksums mean byte-identical graphs. Used by the
  /// parallel-vs-serial build identity tests.
  std::uint64_t GraphChecksum() const;

 private:
  /// Per-node output of a batch's frozen-graph candidate search
  /// (phase A): the node's proposed out-links per layer.
  struct InsertPlan {
    std::vector<std::vector<std::uint32_t>> links;
  };

  /// Computes `id`'s insertion plan against the current (frozen) graph.
  /// Earlier batch members ([batch_first, id), invisible in the frozen
  /// snapshot) join the candidate set by exact scoring, so the plan sees
  /// everything a sequential insert would have seen. Read-only; safe to
  /// run concurrently for all members of a batch.
  InsertPlan PlanInsert(std::uint32_t id, int level,
                        std::uint32_t batch_first,
                        std::vector<char>* visited) const;

  /// Applies a batch's plans: assigns own links, then groups the reverse
  /// edges by target node and appends+shrinks each target once, in
  /// canonical (target, layer, id) order — deterministic regardless of
  /// how the per-target work is scheduled, because distinct targets touch
  /// disjoint adjacency lists.
  void ApplyBatch(std::uint32_t first, std::size_t count,
                  std::vector<InsertPlan>* plans);
  std::size_t MaxDegree(int layer) const {
    return layer == 0 ? 2 * options_.M : options_.M;
  }
  /// Best-first beam search at `layer` from `entry`; returns up to `ef`
  /// results, unsorted. All of a node's unvisited links are scored in one
  /// batch-kernel call (the gather shape with software prefetch).
  std::vector<ScoredId> SearchLayer(const float* query, float query_pre,
                                    std::uint32_t entry, std::size_t ef,
                                    int layer,
                                    std::vector<char>* visited) const;
  /// One greedy descent step chain: from `entry`, repeatedly hop to the
  /// best-scoring neighbor at `layer` until no neighbor improves; each
  /// hop scores the node's whole adjacency list in one batch call.
  std::uint32_t GreedyStep(const float* query, float query_pre,
                           std::uint32_t entry, int layer) const;
  void Insert(std::uint32_t id, int level);
  /// Malkov & Yashunin's neighbor-selection heuristic (Alg. 4): from
  /// `candidates` (scored against the base point, sorted descending),
  /// keeps a candidate only if it is closer to the base than to every
  /// neighbor kept so far, then backfills remaining slots from the pruned
  /// list. The pruning preserves "bridge" edges between clusters that
  /// plain top-M would discard — without it the graph fragments into
  /// per-cluster islands and recall collapses on clustered data.
  std::vector<std::uint32_t> SelectNeighbors(
      const std::vector<ScoredId>& candidates, std::size_t m) const;
  /// Re-selects the links of `node` at `layer` when they exceed capacity.
  void ShrinkLinks(std::uint32_t node, int layer);

  /// fp32 view of node `id`: a direct pointer for the fp32 codec, a
  /// decode into *scratch otherwise. Construction uses this for the
  /// query side of node-vs-node scoring.
  const float* NodeVec(std::uint32_t id, std::vector<float>* scratch) const;

  /// Next geometric level draw from the seeded stream. Build consumes one
  /// draw per node and Add continues the same stream, so build(A) +
  /// add(B) assigns B's nodes the levels build(A+B) would have — the
  /// level distribution (and thus the deterministic-graph contract) is
  /// independent of how the data arrived. level_draws_ counts consumed
  /// draws so persistence can fast-forward a fresh stream on Load.
  int DrawLevel();

  HnswOptions options_;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  VectorStore store_;
  /// links_[node][layer] = adjacency list (layer <= levels_[node]).
  std::vector<std::vector<std::vector<std::uint32_t>>> links_;
  std::vector<int> levels_;
  std::uint32_t entry_ = 0;
  int max_level_ = -1;
  Rng level_rng_{0};
  std::uint64_t level_draws_ = 0;
};

}  // namespace cre

#endif  // CRE_VECSIM_HNSW_INDEX_H_
