#include "vecsim/brute_force.h"

#include <algorithm>
#include <mutex>

#include "vecsim/index_io.h"

namespace cre {

namespace {
/// Rows scored per batch-kernel call on the scan paths: big enough to
/// amortize the query loads and keep the prefetcher busy, small enough
/// that the score buffer stays in L1.
constexpr std::size_t kScanBlock = 256;
}  // namespace

std::vector<MatchPair> SimilarityJoinBrute(const float* left,
                                           std::size_t n_left,
                                           const float* right,
                                           std::size_t n_right,
                                           std::size_t dim, float threshold,
                                           const BruteForceOptions& options) {
  const DotBatchFn dot_batch = GetDotBatchKernel(options.variant);
  std::vector<MatchPair> matches;

  auto scan_range = [&](std::size_t begin, std::size_t end,
                        std::vector<MatchPair>* out) {
    float scores[kScanBlock];
    for (std::size_t i = begin; i < end; ++i) {
      // Cancellation lands between left rows (one row = n_right dots),
      // so a cancelled query stops scanning within microseconds instead
      // of finishing the whole all-pairs block.
      if ((i & 63) == 0 && options.cancel != nullptr &&
          options.cancel->cancelled()) {
        return;
      }
      const float* lv = left + i * dim;
      for (std::size_t j0 = 0; j0 < n_right; j0 += kScanBlock) {
        const std::size_t count = std::min(kScanBlock, n_right - j0);
        dot_batch(lv, right + j0 * dim, count, dim, scores);
        for (std::size_t j = 0; j < count; ++j) {
          if (scores[j] >= threshold) {
            out->push_back({static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(j0 + j), scores[j]});
          }
        }
      }
    }
  };

  if (options.pool == nullptr || options.pool->num_threads() <= 1 ||
      n_left < 64) {
    scan_range(0, n_left, &matches);
    return matches;
  }

  std::mutex merge_mu;
  options.pool->ParallelFor(
      n_left,
      [&](std::size_t begin, std::size_t end) {
        std::vector<MatchPair> local;
        scan_range(begin, end, &local);
        std::lock_guard<std::mutex> lock(merge_mu);
        matches.insert(matches.end(), local.begin(), local.end());
      },
      /*min_chunk=*/64);
  return matches;
}

std::vector<MatchPair> SimilarityJoinBruteHalf(
    const std::uint16_t* left, std::size_t n_left, const std::uint16_t* right,
    std::size_t n_right, std::size_t dim, float threshold, TaskRunner* pool) {
  std::vector<MatchPair> matches;
  auto scan_range = [&](std::size_t begin, std::size_t end,
                        std::vector<MatchPair>* out) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint16_t* lv = left + i * dim;
      for (std::size_t j = 0; j < n_right; ++j) {
        const float s = DotHalf(lv, right + j * dim, dim);
        if (s >= threshold) {
          out->push_back({static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j), s});
        }
      }
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || n_left < 64) {
    scan_range(0, n_left, &matches);
    return matches;
  }
  std::mutex merge_mu;
  pool->ParallelFor(
      n_left,
      [&](std::size_t begin, std::size_t end) {
        std::vector<MatchPair> local;
        scan_range(begin, end, &local);
        std::lock_guard<std::mutex> lock(merge_mu);
        matches.insert(matches.end(), local.begin(), local.end());
      },
      /*min_chunk=*/64);
  return matches;
}

Status FlatIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  store_.Reset(quant_.codec, dim);
  store_.SetVariant(variant_);
  store_.Append(data, n);
  n_ = n;
  dim_ = dim;
  return Status::OK();
}

Status FlatIndex::Add(const float* data, std::size_t n, std::size_t dim) {
  if (dim_ == 0) return Build(data, n, dim);
  if (dim != dim_) {
    return Status::InvalidArgument("flat Add: dim mismatch");
  }
  store_.Append(data, n);
  n_ += n;
  return Status::OK();
}

namespace {
constexpr std::uint32_t kFlatMagic = 0x43464C54;  // "CFLT"
// v2: codec-encoded payload (kind byte + blobs) instead of a raw fp32 vec.
constexpr std::uint32_t kFlatVersion = 2;
}  // namespace

Status FlatIndex::Save(std::ostream& out) const {
  CRE_RETURN_NOT_OK(vecio::WriteTag(out, kFlatMagic, kFlatVersion));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, n_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, dim_));
  return store_.Save(out);
}

Status FlatIndex::Load(std::istream& in) {
  CRE_RETURN_NOT_OK(vecio::ExpectTag(in, kFlatMagic, kFlatVersion, "flat"));
  std::uint64_t n = 0, dim = 0;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &n));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &dim));
  // Bound before multiplying: a crafted n*dim must not wrap into a
  // "consistent" product.
  if (dim == 0 || dim > vecio::kMaxDim || n > vecio::kMaxArrayElems) {
    return Status::InvalidArgument("flat load: implausible header");
  }
  CRE_RETURN_NOT_OK(store_.Load(in, static_cast<std::size_t>(n),
                                static_cast<std::size_t>(dim)));
  store_.SetVariant(variant_);
  quant_.codec = store_.kind();
  n_ = static_cast<std::size_t>(n);
  dim_ = static_cast<std::size_t>(dim);
  return Status::OK();
}

void FlatIndex::RangeSearch(const float* query, float threshold,
                            std::vector<ScoredId>* out) const {
  const float pre = store_.QueryPrecompute(query);
  float scores[kScanBlock];
  if (!store_.quantized()) {
    for (std::size_t i0 = 0; i0 < n_; i0 += kScanBlock) {
      const std::size_t count = std::min(kScanBlock, n_ - i0);
      store_.ScoreRange(query, pre, i0, count, scores);
      for (std::size_t i = 0; i < count; ++i) {
        if (scores[i] >= threshold) {
          out->push_back({static_cast<std::uint32_t>(i0 + i), scores[i]});
        }
      }
    }
    return;
  }
  // Quantized: gather candidates at a slackened threshold, then re-rank
  // with exact fp32 arithmetic over the decoded rows and filter exactly.
  const float gate = threshold - store_.ScoreSlack();
  std::vector<float> scratch(dim_);
  for (std::size_t i0 = 0; i0 < n_; i0 += kScanBlock) {
    const std::size_t count = std::min(kScanBlock, n_ - i0);
    store_.ScoreRange(query, pre, i0, count, scores);
    for (std::size_t i = 0; i < count; ++i) {
      if (scores[i] < gate) continue;
      const auto id = static_cast<std::uint32_t>(i0 + i);
      const float exact = store_.RescoreOne(query, id, scratch.data());
      if (exact >= threshold) out->push_back({id, exact});
    }
  }
}

std::vector<ScoredId> FlatIndex::TopK(const float* query,
                                      std::size_t k) const {
  const float pre = store_.QueryPrecompute(query);
  float scores[kScanBlock];
  const std::size_t fetch =
      store_.quantized()
          ? std::max(k, k * std::max<std::size_t>(quant_.rescore_factor, 1))
          : k;
  TopKCollector collector(fetch);
  for (std::size_t i0 = 0; i0 < n_; i0 += kScanBlock) {
    const std::size_t count = std::min(kScanBlock, n_ - i0);
    store_.ScoreRange(query, pre, i0, count, scores);
    for (std::size_t i = 0; i < count; ++i) {
      collector.Offer(static_cast<std::uint32_t>(i0 + i), scores[i]);
    }
  }
  if (!store_.quantized()) return collector.TakeSorted();
  std::vector<float> scratch(dim_);
  TopKCollector rescored(k);
  for (const auto& cand : collector.TakeSorted()) {
    rescored.Offer(cand.id, store_.RescoreOne(query, cand.id, scratch.data()));
  }
  return rescored.TakeSorted();
}

}  // namespace cre
