#include "vecsim/brute_force.h"

#include <mutex>

#include "vecsim/index_io.h"

namespace cre {

std::vector<MatchPair> SimilarityJoinBrute(const float* left,
                                           std::size_t n_left,
                                           const float* right,
                                           std::size_t n_right,
                                           std::size_t dim, float threshold,
                                           const BruteForceOptions& options) {
  const DotFn dot = GetDotKernel(options.variant);
  std::vector<MatchPair> matches;

  auto scan_range = [&](std::size_t begin, std::size_t end,
                        std::vector<MatchPair>* out) {
    for (std::size_t i = begin; i < end; ++i) {
      // Cancellation lands between left rows (one row = n_right dots),
      // so a cancelled query stops scanning within microseconds instead
      // of finishing the whole all-pairs block.
      if ((i & 63) == 0 && options.cancel != nullptr &&
          options.cancel->cancelled()) {
        return;
      }
      const float* lv = left + i * dim;
      for (std::size_t j = 0; j < n_right; ++j) {
        const float s = dot(lv, right + j * dim, dim);
        if (s >= threshold) {
          out->push_back({static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j), s});
        }
      }
    }
  };

  if (options.pool == nullptr || options.pool->num_threads() <= 1 ||
      n_left < 64) {
    scan_range(0, n_left, &matches);
    return matches;
  }

  std::mutex merge_mu;
  options.pool->ParallelFor(
      n_left,
      [&](std::size_t begin, std::size_t end) {
        std::vector<MatchPair> local;
        scan_range(begin, end, &local);
        std::lock_guard<std::mutex> lock(merge_mu);
        matches.insert(matches.end(), local.begin(), local.end());
      },
      /*min_chunk=*/64);
  return matches;
}

std::vector<MatchPair> SimilarityJoinBruteHalf(
    const std::uint16_t* left, std::size_t n_left, const std::uint16_t* right,
    std::size_t n_right, std::size_t dim, float threshold, TaskRunner* pool) {
  std::vector<MatchPair> matches;
  auto scan_range = [&](std::size_t begin, std::size_t end,
                        std::vector<MatchPair>* out) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint16_t* lv = left + i * dim;
      for (std::size_t j = 0; j < n_right; ++j) {
        const float s = DotHalf(lv, right + j * dim, dim);
        if (s >= threshold) {
          out->push_back({static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j), s});
        }
      }
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1 || n_left < 64) {
    scan_range(0, n_left, &matches);
    return matches;
  }
  std::mutex merge_mu;
  pool->ParallelFor(
      n_left,
      [&](std::size_t begin, std::size_t end) {
        std::vector<MatchPair> local;
        scan_range(begin, end, &local);
        std::lock_guard<std::mutex> lock(merge_mu);
        matches.insert(matches.end(), local.begin(), local.end());
      },
      /*min_chunk=*/64);
  return matches;
}

Status FlatIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  data_.assign(data, data + n * dim);
  n_ = n;
  dim_ = dim;
  return Status::OK();
}

Status FlatIndex::Add(const float* data, std::size_t n, std::size_t dim) {
  if (dim_ == 0) return Build(data, n, dim);
  if (dim != dim_) {
    return Status::InvalidArgument("flat Add: dim mismatch");
  }
  data_.insert(data_.end(), data, data + n * dim);
  n_ += n;
  return Status::OK();
}

namespace {
constexpr std::uint32_t kFlatMagic = 0x43464C54;  // "CFLT"
constexpr std::uint32_t kFlatVersion = 1;
}  // namespace

Status FlatIndex::Save(std::ostream& out) const {
  CRE_RETURN_NOT_OK(vecio::WriteTag(out, kFlatMagic, kFlatVersion));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, n_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, dim_));
  return vecio::WriteVec(out, data_);
}

Status FlatIndex::Load(std::istream& in) {
  CRE_RETURN_NOT_OK(vecio::ExpectTag(in, kFlatMagic, kFlatVersion, "flat"));
  std::uint64_t n = 0, dim = 0;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &n));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &dim));
  // Bound before multiplying: a crafted n*dim must not wrap into a
  // "consistent" product.
  if (dim == 0 || dim > vecio::kMaxDim || n > vecio::kMaxArrayElems) {
    return Status::InvalidArgument("flat load: implausible header");
  }
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &data_));
  if (data_.size() != n * dim) {
    return Status::InvalidArgument("flat load: inconsistent sizes");
  }
  n_ = static_cast<std::size_t>(n);
  dim_ = static_cast<std::size_t>(dim);
  return Status::OK();
}

void FlatIndex::RangeSearch(const float* query, float threshold,
                            std::vector<ScoredId>* out) const {
  const DotFn dot = GetDotKernel(variant_);
  for (std::size_t i = 0; i < n_; ++i) {
    const float s = dot(query, data_.data() + i * dim_, dim_);
    if (s >= threshold) out->push_back({static_cast<std::uint32_t>(i), s});
  }
}

std::vector<ScoredId> FlatIndex::TopK(const float* query,
                                      std::size_t k) const {
  const DotFn dot = GetDotKernel(variant_);
  TopKCollector collector(k);
  for (std::size_t i = 0; i < n_; ++i) {
    collector.Offer(static_cast<std::uint32_t>(i),
                    dot(query, data_.data() + i * dim_, dim_));
  }
  return collector.TakeSorted();
}

}  // namespace cre
