#ifndef CRE_VECSIM_KERNELS_INTERNAL_H_
#define CRE_VECSIM_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

// Internal seam between the generic dispatch TU (kernels.cc) and the
// per-ISA translation units. Each ISA TU is compiled with its own
// -m<isa> flags (see CMakeLists.txt) and only these symbols cross the
// boundary; the generic TU references them solely behind runtime CPUID
// checks, so a generic binary never executes an instruction the host
// lacks. Declarations are unconditional — definitions exist only when
// CMake includes the matching TU (CRE_HAVE_AVX2_TU / CRE_HAVE_AVX512_TU
// tell kernels.cc which ones to register).

namespace cre::detail {

// kernels_avx2.cc (-mavx2 -mfma -mf16c)
float DotAvx2Impl(const float* a, const float* b, std::size_t dim);
void DotBatchAvx2Impl(const float* query, const float* base, std::size_t n,
                      std::size_t dim, float* out);
void DotBatchGatherAvx2Impl(const float* query, const float* base,
                            const std::uint32_t* ids, std::size_t n,
                            std::size_t dim, float* out);
float DotHalfAvx2Impl(const std::uint16_t* a, const std::uint16_t* b,
                      std::size_t dim);
float DotHalfAsymAvx2Impl(const float* query, const std::uint16_t* b,
                          std::size_t dim);
void DotHalfAsymBatchAvx2Impl(const float* query, const std::uint16_t* base,
                              std::size_t n, std::size_t dim, float* out);
void DotHalfAsymGatherAvx2Impl(const float* query, const std::uint16_t* base,
                               const std::uint32_t* ids, std::size_t n,
                               std::size_t dim, float* out);
float DotInt8AsymAvx2Impl(const float* query, const std::int8_t* codes,
                          std::size_t dim);
void DotInt8AsymBatchAvx2Impl(const float* query, const std::int8_t* codes,
                              std::size_t n, std::size_t dim, float* out);
void DotInt8AsymGatherAvx2Impl(const float* query, const std::int8_t* codes,
                               const std::uint32_t* ids, std::size_t n,
                               std::size_t dim, float* out);

// kernels_avx512.cc (-mavx512f)
float DotAvx512Impl(const float* a, const float* b, std::size_t dim);
void DotBatchAvx512Impl(const float* query, const float* base, std::size_t n,
                        std::size_t dim, float* out);
void DotBatchGatherAvx512Impl(const float* query, const float* base,
                              const std::uint32_t* ids, std::size_t n,
                              std::size_t dim, float* out);

}  // namespace cre::detail

#endif  // CRE_VECSIM_KERNELS_INTERNAL_H_
