#include "vecsim/kernels.h"

#include <cmath>

#include "vecsim/fp16.h"
#include "vecsim/kernels_internal.h"

// Generic translation unit: compiled without any -m<isa> flags so the
// scalar/unrolled bodies (and all dispatch logic) run anywhere. The SIMD
// bodies live in kernels_avx2.cc / kernels_avx512.cc; CMake defines
// CRE_HAVE_AVX2_TU / CRE_HAVE_AVX512_TU on this file when those TUs are
// part of the build, and every call site below still checks CPUID at
// runtime before crossing into them.

namespace cre {

namespace {
/// Rows to prefetch ahead of the FMA stream in the batch kernels. Two or
/// three rows cover L2 latency at the dims this engine uses (64-512 floats)
/// without evicting the query vector.
constexpr std::size_t kBatchPrefetchRows = 4;
}  // namespace

const char* KernelVariantName(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kUnrolled:
      return "unrolled";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kAvx512:
      return "avx512";
    case KernelVariant::kHalf:
      return "fp16";
  }
  return "?";
}

bool CpuSupportsAvx2() {
#if defined(CRE_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  // F16C is part of the gate because the AVX2 TU is compiled with -mf16c
  // and its fp16 kernels use cvtph; every AVX2+FMA part ships F16C.
  static const bool ok = __builtin_cpu_supports("avx2") &&
                         __builtin_cpu_supports("fma") &&
                         __builtin_cpu_supports("f16c");
  return ok;
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if defined(CRE_HAVE_AVX512_TU) && (defined(__x86_64__) || defined(__i386__))
  static const bool ok = __builtin_cpu_supports("avx512f");
  return ok;
#else
  return false;
#endif
}

KernelVariant BestKernelVariant() {
  if (CpuSupportsAvx512()) return KernelVariant::kAvx512;
  if (CpuSupportsAvx2()) return KernelVariant::kAvx2;
  return KernelVariant::kUnrolled;
}

float DotScalar(const float* a, const float* b, std::size_t dim) {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float DotUnrolled(const float* a, const float* b, std::size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

float DotAvx2(const float* a, const float* b, std::size_t dim) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) return detail::DotAvx2Impl(a, b, dim);
#endif
  return DotUnrolled(a, b, dim);
}

float DotAvx512(const float* a, const float* b, std::size_t dim) {
#if defined(CRE_HAVE_AVX512_TU)
  if (CpuSupportsAvx512()) return detail::DotAvx512Impl(a, b, dim);
#endif
  return DotAvx2(a, b, dim);
}

float DotHalf(const std::uint16_t* a, const std::uint16_t* b,
              std::size_t dim) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) return detail::DotHalfAvx2Impl(a, b, dim);
#endif
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += HalfToFloat(a[i]) * HalfToFloat(b[i]);
  }
  return acc;
}

void DotBatchScalar(const float* query, const float* base, std::size_t n,
                    std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kBatchPrefetchRows < n) {
      __builtin_prefetch(base + (i + kBatchPrefetchRows) * dim);
    }
    out[i] = DotScalar(query, base + i * dim, dim);
  }
}

void DotBatchUnrolled(const float* query, const float* base, std::size_t n,
                      std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kBatchPrefetchRows < n) {
      __builtin_prefetch(base + (i + kBatchPrefetchRows) * dim);
    }
    out[i] = DotUnrolled(query, base + i * dim, dim);
  }
}

void DotBatchAvx2(const float* query, const float* base, std::size_t n,
                  std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) {
    detail::DotBatchAvx2Impl(query, base, n, dim, out);
    return;
  }
#endif
  DotBatchUnrolled(query, base, n, dim, out);
}

void DotBatchAvx512(const float* query, const float* base, std::size_t n,
                    std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX512_TU)
  if (CpuSupportsAvx512()) {
    detail::DotBatchAvx512Impl(query, base, n, dim, out);
    return;
  }
#endif
  DotBatchAvx2(query, base, n, dim, out);
}

void DotBatchGatherScalar(const float* query, const float* base,
                          const std::uint32_t* ids, std::size_t n,
                          std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kBatchPrefetchRows < n) {
      __builtin_prefetch(base + ids[i + kBatchPrefetchRows] * dim);
    }
    out[i] = DotScalar(query, base + ids[i] * dim, dim);
  }
}

void DotBatchGatherUnrolled(const float* query, const float* base,
                            const std::uint32_t* ids, std::size_t n,
                            std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kBatchPrefetchRows < n) {
      __builtin_prefetch(base + ids[i + kBatchPrefetchRows] * dim);
    }
    out[i] = DotUnrolled(query, base + ids[i] * dim, dim);
  }
}

void DotBatchGatherAvx2(const float* query, const float* base,
                        const std::uint32_t* ids, std::size_t n,
                        std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) {
    detail::DotBatchGatherAvx2Impl(query, base, ids, n, dim, out);
    return;
  }
#endif
  DotBatchGatherUnrolled(query, base, ids, n, dim, out);
}

void DotBatchGatherAvx512(const float* query, const float* base,
                          const std::uint32_t* ids, std::size_t n,
                          std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX512_TU)
  if (CpuSupportsAvx512()) {
    detail::DotBatchGatherAvx512Impl(query, base, ids, n, dim, out);
    return;
  }
#endif
  DotBatchGatherAvx2(query, base, ids, n, dim, out);
}

float DotHalfAsym(const float* query, const std::uint16_t* b,
                  std::size_t dim) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) return detail::DotHalfAsymAvx2Impl(query, b, dim);
#endif
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) acc += query[i] * HalfToFloat(b[i]);
  return acc;
}

void DotHalfAsymBatch(const float* query, const std::uint16_t* base,
                      std::size_t n, std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) {
    detail::DotHalfAsymBatchAvx2Impl(query, base, n, dim, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = DotHalfAsym(query, base + i * dim, dim);
  }
}

void DotHalfAsymGather(const float* query, const std::uint16_t* base,
                       const std::uint32_t* ids, std::size_t n,
                       std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) {
    detail::DotHalfAsymGatherAvx2Impl(query, base, ids, n, dim, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = DotHalfAsym(query, base + ids[i] * dim, dim);
  }
}

float DotInt8Asym(const float* query, const std::int8_t* codes,
                  std::size_t dim) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) return detail::DotInt8AsymAvx2Impl(query, codes, dim);
#endif
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += query[i] * static_cast<float>(codes[i]);
  }
  return acc;
}

void DotInt8AsymBatch(const float* query, const std::int8_t* codes,
                      std::size_t n, std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) {
    detail::DotInt8AsymBatchAvx2Impl(query, codes, n, dim, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = DotInt8Asym(query, codes + i * dim, dim);
  }
}

void DotInt8AsymGather(const float* query, const std::int8_t* codes,
                       const std::uint32_t* ids, std::size_t n,
                       std::size_t dim, float* out) {
#if defined(CRE_HAVE_AVX2_TU)
  if (CpuSupportsAvx2()) {
    detail::DotInt8AsymGatherAvx2Impl(query, codes, ids, n, dim, out);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = DotInt8Asym(query, codes + ids[i] * dim, dim);
  }
}

DotFn GetDotKernel(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
      return &DotScalar;
    case KernelVariant::kUnrolled:
      return &DotUnrolled;
    case KernelVariant::kAvx2:
      return CpuSupportsAvx2() ? &DotAvx2 : &DotUnrolled;
    case KernelVariant::kAvx512:
      if (CpuSupportsAvx512()) return &DotAvx512;
      return CpuSupportsAvx2() ? &DotAvx2 : &DotUnrolled;
    case KernelVariant::kHalf:
      // Half operands use DotHalf directly; as a float-kernel fallback use
      // the unrolled variant.
      return &DotUnrolled;
  }
  return &DotScalar;
}

DotBatchFn GetDotBatchKernel(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
      return &DotBatchScalar;
    case KernelVariant::kUnrolled:
      return &DotBatchUnrolled;
    case KernelVariant::kAvx2:
      return CpuSupportsAvx2() ? &DotBatchAvx2 : &DotBatchUnrolled;
    case KernelVariant::kAvx512:
      if (CpuSupportsAvx512()) return &DotBatchAvx512;
      return CpuSupportsAvx2() ? &DotBatchAvx2 : &DotBatchUnrolled;
    case KernelVariant::kHalf:
      return &DotBatchUnrolled;
  }
  return &DotBatchScalar;
}

DotBatchGatherFn GetDotBatchGatherKernel(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
      return &DotBatchGatherScalar;
    case KernelVariant::kUnrolled:
      return &DotBatchGatherUnrolled;
    case KernelVariant::kAvx2:
      return CpuSupportsAvx2() ? &DotBatchGatherAvx2 : &DotBatchGatherUnrolled;
    case KernelVariant::kAvx512:
      if (CpuSupportsAvx512()) return &DotBatchGatherAvx512;
      return CpuSupportsAvx2() ? &DotBatchGatherAvx2 : &DotBatchGatherUnrolled;
    case KernelVariant::kHalf:
      return &DotBatchGatherUnrolled;
  }
  return &DotBatchGatherScalar;
}

float Norm(const float* a, std::size_t dim) {
  return std::sqrt(DotUnrolled(a, a, dim));
}

void NormalizeInPlace(float* a, std::size_t dim) {
  const float n = Norm(a, dim);
  if (n <= 0.f) return;
  const float inv = 1.f / n;
  for (std::size_t i = 0; i < dim; ++i) a[i] *= inv;
}

float Cosine(const float* a, const float* b, std::size_t dim) {
  const float na = Norm(a, dim);
  const float nb = Norm(b, dim);
  if (na <= 0.f || nb <= 0.f) return 0.f;
  return DotUnrolled(a, b, dim) / (na * nb);
}

float L2Sq(const float* a, const float* b, std::size_t dim) {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace cre
