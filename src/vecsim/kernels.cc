#include "vecsim/kernels.h"

#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "vecsim/fp16.h"

namespace cre {

const char* KernelVariantName(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kUnrolled:
      return "unrolled";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kHalf:
      return "fp16";
  }
  return "?";
}

bool CpuSupportsAvx2() {
#if defined(__AVX2__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

KernelVariant BestKernelVariant() {
  return CpuSupportsAvx2() ? KernelVariant::kAvx2 : KernelVariant::kUnrolled;
}

float DotScalar(const float* a, const float* b, std::size_t dim) {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float DotUnrolled(const float* a, const float* b, std::size_t dim) {
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  std::size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

#if defined(__AVX2__)
float DotAvx2(const float* a, const float* b, std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  acc0 = _mm256_add_ps(acc0, acc1);
  __m128 lo = _mm256_castps256_ps128(acc0);
  __m128 hi = _mm256_extractf128_ps(acc0, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  float acc = _mm_cvtss_f32(lo);
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}
#else
float DotAvx2(const float* a, const float* b, std::size_t dim) {
  return DotUnrolled(a, b, dim);
}
#endif

float DotHalf(const std::uint16_t* a, const std::uint16_t* b,
              std::size_t dim) {
#if defined(__AVX2__) && defined(__F16C__)
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 va = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256 vb = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_fmadd_ps(va, vb, acc);
  }
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  float out = _mm_cvtss_f32(lo);
  for (; i < dim; ++i) out += HalfToFloat(a[i]) * HalfToFloat(b[i]);
  return out;
#else
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += HalfToFloat(a[i]) * HalfToFloat(b[i]);
  }
  return acc;
#endif
}

DotFn GetDotKernel(KernelVariant variant) {
  switch (variant) {
    case KernelVariant::kScalar:
      return &DotScalar;
    case KernelVariant::kUnrolled:
      return &DotUnrolled;
    case KernelVariant::kAvx2:
      return CpuSupportsAvx2() ? &DotAvx2 : &DotUnrolled;
    case KernelVariant::kHalf:
      // Half operands use DotHalf directly; as a float-kernel fallback use
      // the unrolled variant.
      return &DotUnrolled;
  }
  return &DotScalar;
}

float Norm(const float* a, std::size_t dim) {
  return std::sqrt(DotUnrolled(a, a, dim));
}

void NormalizeInPlace(float* a, std::size_t dim) {
  const float n = Norm(a, dim);
  if (n <= 0.f) return;
  const float inv = 1.f / n;
  for (std::size_t i = 0; i < dim; ++i) a[i] *= inv;
}

float Cosine(const float* a, const float* b, std::size_t dim) {
  const float na = Norm(a, dim);
  const float nb = Norm(b, dim);
  if (na <= 0.f || nb <= 0.f) return 0.f;
  return DotUnrolled(a, b, dim) / (na * nb);
}

float L2Sq(const float* a, const float* b, std::size_t dim) {
  float acc = 0.f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace cre
