#include "vecsim/ivf_index.h"

#include <algorithm>
#include <limits>

#include "core/rng.h"
#include "vecsim/top_k.h"

namespace cre {

Status IvfIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  n_ = n;
  dim_ = dim;
  data_.assign(data, data + n * dim);
  centroid_count_ = std::min(options_.num_centroids, std::max<std::size_t>(n, 1));
  if (n == 0) {
    lists_.clear();
    centroids_.clear();
    return Status::OK();
  }

  // k-means++ style seeding simplified: random distinct starting points.
  Rng rng(options_.seed);
  centroids_.resize(centroid_count_ * dim);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = 0; i < centroid_count_; ++i) {
    std::swap(perm[i], perm[i + rng.Uniform(n - i)]);
    std::copy(data + perm[i] * dim, data + (perm[i] + 1) * dim,
              centroids_.begin() + i * dim);
  }

  std::vector<std::uint32_t> assign(n, 0);
  std::vector<float> sums(centroid_count_ * dim);
  std::vector<std::size_t> counts(centroid_count_);
  for (std::size_t iter = 0; iter < options_.kmeans_iters; ++iter) {
    // Assign step (L2 on unit vectors == ordering by dot).
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      float best = -std::numeric_limits<float>::max();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < centroid_count_; ++c) {
        const float s = DotUnrolled(v, centroids_.data() + c * dim, dim);
        if (s > best) {
          best = s;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      assign[i] = best_c;
    }
    // Update step.
    std::fill(sums.begin(), sums.end(), 0.f);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      float* s = sums.data() + assign[i] * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += v[d];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < centroid_count_; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty cluster
      float* ctr = centroids_.data() + c * dim;
      const float inv = 1.f / static_cast<float>(counts[c]);
      for (std::size_t d = 0; d < dim; ++d) ctr[d] = sums[c * dim + d] * inv;
      NormalizeInPlace(ctr, dim);
    }
  }

  lists_.assign(centroid_count_, {});
  for (std::size_t i = 0; i < n; ++i) {
    lists_[assign[i]].push_back(static_cast<std::uint32_t>(i));
  }
  return Status::OK();
}

std::vector<std::uint32_t> IvfIndex::NearestCentroids(
    const float* query, std::size_t nprobe) const {
  TopKCollector collector(std::min(nprobe, centroid_count_));
  for (std::size_t c = 0; c < centroid_count_; ++c) {
    collector.Offer(static_cast<std::uint32_t>(c),
                    DotUnrolled(query, centroids_.data() + c * dim_, dim_));
  }
  std::vector<std::uint32_t> out;
  for (const auto& s : collector.TakeSorted()) out.push_back(s.id);
  return out;
}

void IvfIndex::RangeSearch(const float* query, float threshold,
                           std::vector<ScoredId>* out) const {
  if (n_ == 0) return;
  const DotFn dot = GetDotKernel(BestKernelVariant());
  for (const std::uint32_t c : NearestCentroids(query, options_.nprobe)) {
    for (const std::uint32_t id : lists_[c]) {
      const float s = dot(query, data_.data() + id * dim_, dim_);
      if (s >= threshold) out->push_back({id, s});
    }
  }
}

std::vector<ScoredId> IvfIndex::TopK(const float* query, std::size_t k) const {
  TopKCollector collector(k);
  if (n_ == 0) return collector.TakeSorted();
  const DotFn dot = GetDotKernel(BestKernelVariant());
  for (const std::uint32_t c : NearestCentroids(query, options_.nprobe)) {
    for (const std::uint32_t id : lists_[c]) {
      collector.Offer(id, dot(query, data_.data() + id * dim_, dim_));
    }
  }
  return collector.TakeSorted();
}

std::size_t IvfIndex::MemoryBytes() const {
  std::size_t bytes =
      (data_.size() + centroids_.size()) * sizeof(float);
  for (const auto& l : lists_) bytes += l.size() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace cre
