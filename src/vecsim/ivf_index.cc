#include "vecsim/ivf_index.h"

#include <algorithm>
#include <limits>

#include "core/rng.h"
#include "vecsim/index_io.h"
#include "vecsim/top_k.h"

namespace cre {

namespace {

/// Posting-list ids scored per batch-gather kernel call; also the
/// cancellation poll granularity of the scans, so a cancelled query
/// stops within one block rather than after the whole probe set.
constexpr std::size_t kListBlock = 64;

bool Cancelled(const CancelFlag* cancel) {
  return cancel != nullptr && cancel->cancelled();
}

}  // namespace

Status IvfIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  n_ = n;
  dim_ = dim;
  data_.assign(data, data + n * dim);
  centroid_count_ = std::min(options_.num_centroids, std::max<std::size_t>(n, 1));
  if (n == 0) {
    lists_.clear();
    centroids_.clear();
    return Status::OK();
  }

  // k-means++ style seeding simplified: random distinct starting points.
  Rng rng(options_.seed);
  centroids_.resize(centroid_count_ * dim);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = 0; i < centroid_count_; ++i) {
    std::swap(perm[i], perm[i + rng.Uniform(n - i)]);
    std::copy(data + perm[i] * dim, data + (perm[i] + 1) * dim,
              centroids_.begin() + i * dim);
  }

  std::vector<std::uint32_t> assign(n, 0);
  std::vector<float> sums(centroid_count_ * dim);
  std::vector<std::size_t> counts(centroid_count_);
  for (std::size_t iter = 0; iter < options_.kmeans_iters; ++iter) {
    // Iteration-level cancellation: k-means dominates build time, and a
    // cancelled build must not run the remaining iterations.
    if (Cancelled(options_.cancel)) {
      return Status::Cancelled("ivf build cancelled");
    }
    // Assign step (L2 on unit vectors == ordering by dot).
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      float best = -std::numeric_limits<float>::max();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < centroid_count_; ++c) {
        const float s = DotUnrolled(v, centroids_.data() + c * dim, dim);
        if (s > best) {
          best = s;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      assign[i] = best_c;
    }
    // Update step.
    std::fill(sums.begin(), sums.end(), 0.f);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      float* s = sums.data() + assign[i] * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += v[d];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < centroid_count_; ++c) {
      if (counts[c] == 0) continue;  // keep old centroid for empty cluster
      float* ctr = centroids_.data() + c * dim;
      const float inv = 1.f / static_cast<float>(counts[c]);
      for (std::size_t d = 0; d < dim; ++d) ctr[d] = sums[c * dim + d] * inv;
      NormalizeInPlace(ctr, dim);
    }
  }

  lists_.assign(centroid_count_, {});
  for (std::size_t i = 0; i < n; ++i) {
    lists_[assign[i]].push_back(static_cast<std::uint32_t>(i));
  }
  return Status::OK();
}

Status IvfIndex::Add(const float* data, std::size_t n, std::size_t dim) {
  if (n_ == 0) return Build(data, n, dim);  // no trained centroids yet
  if (dim != dim_) return Status::InvalidArgument("ivf Add: dim mismatch");
  data_.insert(data_.end(), data, data + n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const float* v = data + i * dim;
    float best = -std::numeric_limits<float>::max();
    std::uint32_t best_c = 0;
    for (std::size_t c = 0; c < centroid_count_; ++c) {
      const float s = DotUnrolled(v, centroids_.data() + c * dim, dim);
      if (s > best) {
        best = s;
        best_c = static_cast<std::uint32_t>(c);
      }
    }
    lists_[best_c].push_back(static_cast<std::uint32_t>(n_ + i));
  }
  n_ += n;
  return Status::OK();
}

namespace {
constexpr std::uint32_t kIvfMagic = 0x43495646;  // "CIVF"
constexpr std::uint32_t kIvfVersion = 1;
}  // namespace

Status IvfIndex::Save(std::ostream& out) const {
  CRE_RETURN_NOT_OK(vecio::WriteTag(out, kIvfMagic, kIvfVersion));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.num_centroids));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.nprobe));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.kmeans_iters));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.seed));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, n_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, dim_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, centroid_count_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, data_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, centroids_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, lists_.size()));
  for (const auto& list : lists_) {
    CRE_RETURN_NOT_OK(vecio::WriteVec(out, list));
  }
  return Status::OK();
}

Status IvfIndex::Load(std::istream& in) {
  CRE_RETURN_NOT_OK(vecio::ExpectTag(in, kIvfMagic, kIvfVersion, "ivf"));
  std::uint64_t num_centroids = 0, nprobe = 0, iters = 0, seed = 0;
  std::uint64_t n = 0, dim = 0, centroid_count = 0, list_count = 0;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &num_centroids));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &nprobe));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &iters));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &seed));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &n));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &dim));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &centroid_count));
  // Bounds before any multiplication: caps keep n*dim and
  // centroid_count*dim far from uint64 wraparound.
  if (dim == 0 || dim > vecio::kMaxDim || n > vecio::kMaxArrayElems ||
      centroid_count > vecio::kMaxArrayElems) {
    return Status::InvalidArgument("ivf load: implausible header");
  }
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &data_));
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &centroids_));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &list_count));
  if (n == 0) {
    // An empty build keeps a nominal centroid_count but stores no
    // centroids and no lists (Build returns before training).
    if (!data_.empty() || !centroids_.empty() || list_count != 0) {
      return Status::InvalidArgument("ivf load: inconsistent empty index");
    }
    lists_.clear();
  } else if (data_.size() != n * dim ||
             centroids_.size() != centroid_count * dim ||
             list_count != centroid_count) {
    return Status::InvalidArgument("ivf load: inconsistent sizes");
  }
  lists_.assign(static_cast<std::size_t>(list_count), {});
  std::uint64_t total_ids = 0;
  for (auto& list : lists_) {
    CRE_RETURN_NOT_OK(vecio::ReadVec(in, &list));
    total_ids += list.size();
    for (const std::uint32_t id : list) {
      if (id >= n) return Status::InvalidArgument("ivf load: id out of range");
    }
  }
  if (total_ids != n) {
    return Status::InvalidArgument("ivf load: lists do not partition ids");
  }
  // Restore build-structural options only; nprobe is a query-time
  // recall/latency knob that must follow this instance's configuration,
  // not silently revert to the save-time value on warm start.
  (void)nprobe;
  options_.num_centroids = static_cast<std::size_t>(num_centroids);
  options_.kmeans_iters = static_cast<std::size_t>(iters);
  options_.seed = seed;
  n_ = static_cast<std::size_t>(n);
  dim_ = static_cast<std::size_t>(dim);
  centroid_count_ = static_cast<std::size_t>(centroid_count);
  return Status::OK();
}

std::vector<std::uint32_t> IvfIndex::NearestCentroids(
    const float* query, std::size_t nprobe) const {
  TopKCollector collector(std::min(nprobe, centroid_count_));
  for (std::size_t c = 0; c < centroid_count_; ++c) {
    collector.Offer(static_cast<std::uint32_t>(c),
                    DotUnrolled(query, centroids_.data() + c * dim_, dim_));
  }
  std::vector<std::uint32_t> out;
  for (const auto& s : collector.TakeSorted()) out.push_back(s.id);
  return out;
}

void IvfIndex::RangeSearch(const float* query, float threshold,
                           std::vector<ScoredId>* out) const {
  if (n_ == 0) return;
  // Posting lists score through the batch-gather kernel (one call per
  // block, software prefetch hiding the scattered row loads).
  const DotBatchGatherFn dot_gather = GetDotBatchGatherKernel(
      BestKernelVariant());
  float scores[kListBlock];
  for (const std::uint32_t c : NearestCentroids(query, options_.nprobe)) {
    const auto& list = lists_[c];
    for (std::size_t i0 = 0; i0 < list.size(); i0 += kListBlock) {
      if (Cancelled(options_.cancel)) return;
      const std::size_t count = std::min(kListBlock, list.size() - i0);
      dot_gather(query, data_.data(), list.data() + i0, count, dim_, scores);
      for (std::size_t i = 0; i < count; ++i) {
        if (scores[i] >= threshold) out->push_back({list[i0 + i], scores[i]});
      }
    }
  }
}

std::vector<ScoredId> IvfIndex::TopK(const float* query, std::size_t k) const {
  TopKCollector collector(k);
  if (n_ == 0) return collector.TakeSorted();
  const DotBatchGatherFn dot_gather = GetDotBatchGatherKernel(
      BestKernelVariant());
  float scores[kListBlock];
  for (const std::uint32_t c : NearestCentroids(query, options_.nprobe)) {
    const auto& list = lists_[c];
    for (std::size_t i0 = 0; i0 < list.size(); i0 += kListBlock) {
      if (Cancelled(options_.cancel)) return collector.TakeSorted();
      const std::size_t count = std::min(kListBlock, list.size() - i0);
      dot_gather(query, data_.data(), list.data() + i0, count, dim_, scores);
      for (std::size_t i = 0; i < count; ++i) {
        collector.Offer(list[i0 + i], scores[i]);
      }
    }
  }
  return collector.TakeSorted();
}

std::size_t IvfIndex::MemoryBytes() const {
  std::size_t bytes =
      (data_.size() + centroids_.size()) * sizeof(float);
  for (const auto& l : lists_) bytes += l.size() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace cre
