// AVX2/FMA/F16C kernel bodies. This translation unit is compiled with
// -mavx2 -mfma -mf16c via per-file CMake compile options; nothing here may
// be called unless CpuSupportsAvx2() returned true (kernels.cc enforces
// that), so a generic binary on an older host never reaches these
// instructions.

#include <immintrin.h>

#include "vecsim/fp16.h"
#include "vecsim/kernels_internal.h"

namespace cre::detail {

namespace {

constexpr std::size_t kPrefetchRows = 4;

inline float ReduceAdd(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

}  // namespace

float DotAvx2Impl(const float* a, const float* b, std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  float acc = ReduceAdd(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

void DotBatchAvx2Impl(const float* query, const float* base, std::size_t n,
                      std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      const float* next = base + (i + kPrefetchRows) * dim;
      _mm_prefetch(reinterpret_cast<const char*>(next), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(next + 16), _MM_HINT_T0);
    }
    out[i] = DotAvx2Impl(query, base + i * dim, dim);
  }
}

void DotBatchGatherAvx2Impl(const float* query, const float* base,
                            const std::uint32_t* ids, std::size_t n,
                            std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      const float* next = base + ids[i + kPrefetchRows] * dim;
      _mm_prefetch(reinterpret_cast<const char*>(next), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(next + 16), _MM_HINT_T0);
    }
    out[i] = DotAvx2Impl(query, base + ids[i] * dim, dim);
  }
}

float DotHalfAvx2Impl(const std::uint16_t* a, const std::uint16_t* b,
                      std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 va = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256 vb = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_fmadd_ps(va, vb, acc);
  }
  float out = ReduceAdd(acc);
  for (; i < dim; ++i) out += HalfToFloat(a[i]) * HalfToFloat(b[i]);
  return out;
}

float DotHalfAsymAvx2Impl(const float* query, const std::uint16_t* b,
                          std::size_t dim) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    const __m256 vb = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(query + i), vb, acc);
  }
  float out = ReduceAdd(acc);
  for (; i < dim; ++i) out += query[i] * HalfToFloat(b[i]);
  return out;
}

void DotHalfAsymBatchAvx2Impl(const float* query, const std::uint16_t* base,
                              std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      _mm_prefetch(
          reinterpret_cast<const char*>(base + (i + kPrefetchRows) * dim),
          _MM_HINT_T0);
    }
    out[i] = DotHalfAsymAvx2Impl(query, base + i * dim, dim);
  }
}

void DotHalfAsymGatherAvx2Impl(const float* query, const std::uint16_t* base,
                               const std::uint32_t* ids, std::size_t n,
                               std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      _mm_prefetch(
          reinterpret_cast<const char*>(base + ids[i + kPrefetchRows] * dim),
          _MM_HINT_T0);
    }
    out[i] = DotHalfAsymAvx2Impl(query, base + ids[i] * dim, dim);
  }
}

float DotInt8AsymAvx2Impl(const float* query, const std::int8_t* codes,
                          std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m128i raw = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256 lo = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
    const __m256 hi = _mm256_cvtepi32_ps(
        _mm256_cvtepi8_epi32(_mm_srli_si128(raw, 8)));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(query + i), lo, acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(query + i + 8), hi, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m128i raw = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(raw));
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(query + i), v, acc0);
  }
  float out = ReduceAdd(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) out += query[i] * static_cast<float>(codes[i]);
  return out;
}

void DotInt8AsymBatchAvx2Impl(const float* query, const std::int8_t* codes,
                              std::size_t n, std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      _mm_prefetch(
          reinterpret_cast<const char*>(codes + (i + kPrefetchRows) * dim),
          _MM_HINT_T0);
    }
    out[i] = DotInt8AsymAvx2Impl(query, codes + i * dim, dim);
  }
}

void DotInt8AsymGatherAvx2Impl(const float* query, const std::int8_t* codes,
                               const std::uint32_t* ids, std::size_t n,
                               std::size_t dim, float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchRows < n) {
      _mm_prefetch(
          reinterpret_cast<const char*>(codes + ids[i + kPrefetchRows] * dim),
          _MM_HINT_T0);
    }
    out[i] = DotInt8AsymAvx2Impl(query, codes + ids[i] * dim, dim);
  }
}

}  // namespace cre::detail
