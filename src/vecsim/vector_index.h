#ifndef CRE_VECSIM_VECTOR_INDEX_H_
#define CRE_VECSIM_VECTOR_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"
#include "vecsim/top_k.h"

namespace cre {

/// Shared interface for approximate/exact similarity indexes over a fixed
/// base set of unit-normalized vectors. Scores are cosine similarities
/// (== dot products on unit vectors). Physical operator selection between
/// a full scan and these indexes is a cost-based optimizer decision (E6).
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  /// Builds the index over `n` vectors of dimension `dim`, stored row-major
  /// in `data` (must stay alive while the index is used unless the
  /// implementation copies; all implementations here copy).
  virtual Status Build(const float* data, std::size_t n, std::size_t dim) = 0;

  /// Incrementally appends `n` vectors to an already-built index; the new
  /// base ids continue from size(). Deterministic: the result is a pure
  /// function of (current index state, appended data). This is what lets
  /// the IndexManager refresh a resident index after an append-style table
  /// mutation instead of rebuilding from scratch. Families that cannot
  /// maintain incrementally keep the default and force a rebuild.
  virtual Status Add(const float* data, std::size_t n, std::size_t dim) {
    (void)data;
    (void)n;
    (void)dim;
    return Status::NotImplemented(name() + " does not support incremental Add");
  }

  /// Deep copy (nullptr when the family does not support cloning). Used by
  /// the copy-on-write refresh path: queries keep probing the old immutable
  /// index while appends go into the clone, which is then swapped in.
  virtual std::unique_ptr<VectorIndex> Clone() const { return nullptr; }

  // ---- persistence contract ----
  // Save writes a self-contained, versioned binary image of the index
  // (per-family magic + format version + build options + structure);
  // Load restores it into an instance of the same family, byte-identical
  // for search purposes: under equal query-time knobs, every
  // RangeSearch/TopK over the loaded index returns exactly what the
  // saved one returned. Build-structural options (graph degree, hash
  // shapes, seeds) come from the image; query-time knobs (beam widths,
  // probe counts) stay as configured on the loading instance, so a
  // recall/latency setting change takes effect on warm starts. Load
  // validates the format tag and bounds-checks every read, so a
  // truncated or foreign file yields a Status, never a broken index.

  virtual Status Save(std::ostream& out) const {
    (void)out;
    return Status::NotImplemented(name() + " does not support Save");
  }

  virtual Status Load(std::istream& in) {
    (void)in;
    return Status::NotImplemented(name() + " does not support Load");
  }

  /// Appends all base ids whose similarity to `query` is >= `threshold`.
  virtual void RangeSearch(const float* query, float threshold,
                           std::vector<ScoredId>* out) const = 0;

  /// Returns the k most similar base ids, sorted descending.
  virtual std::vector<ScoredId> TopK(const float* query,
                                     std::size_t k) const = 0;

  virtual std::size_t size() const = 0;
  virtual std::size_t dim() const = 0;
  virtual std::string name() const = 0;

  /// Approximate memory footprint in bytes (for the optimizer cost model).
  virtual std::size_t MemoryBytes() const = 0;

  // ---- checked entry points (uniform edge-case contract) ----
  // The raw virtuals above take a bare pointer and trust the caller's
  // dimension; operators that receive the query vector across an API
  // boundary use these instead, so a model/index dimensionality mismatch
  // surfaces as a Status rather than an out-of-bounds read. All index
  // families additionally share the conventions: Build with n == 0 (and
  // dim > 0) succeeds and yields an empty index whose searches return
  // nothing, and TopK with k > size() returns all size() entries.

  Status CheckQueryDim(std::size_t query_dim) const {
    if (query_dim != dim()) {
      return Status::InvalidArgument(
          "query dim " + std::to_string(query_dim) + " != index dim " +
          std::to_string(dim()) + " (" + name() + ")");
    }
    return Status::OK();
  }

  Status RangeSearchChecked(const float* query, std::size_t query_dim,
                            float threshold, std::vector<ScoredId>* out) const {
    CRE_RETURN_NOT_OK(CheckQueryDim(query_dim));
    RangeSearch(query, threshold, out);
    return Status::OK();
  }

  Result<std::vector<ScoredId>> TopKChecked(const float* query,
                                            std::size_t query_dim,
                                            std::size_t k) const {
    CRE_RETURN_NOT_OK(CheckQueryDim(query_dim));
    return TopK(query, k);
  }
};

}  // namespace cre

#endif  // CRE_VECSIM_VECTOR_INDEX_H_
