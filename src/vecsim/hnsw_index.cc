#include "vecsim/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/hash.h"
#include "core/rng.h"
#include "vecsim/index_io.h"
#include "vecsim/top_k.h"

namespace cre {

namespace {

/// Max-heap on score (best candidate on top).
struct ScoreLess {
  bool operator()(const ScoredId& a, const ScoredId& b) const {
    return a.score < b.score || (a.score == b.score && a.id > b.id);
  }
};

/// Min-heap on score (worst retained result on top); doubles as the
/// best-first (descending score, ascending id) ordering every candidate
/// sort in this file uses — one definition keeps the deterministic
/// tie-break in one place.
struct ScoreGreater {
  bool operator()(const ScoredId& a, const ScoredId& b) const {
    return a.score > b.score || (a.score == b.score && a.id < b.id);
  }
};

/// Poll cadence for cooperative cancellation inside sequential insert
/// loops (bootstrap and Add): cheap enough to be noise, frequent enough
/// that cancel latency is a handful of inserts.
constexpr std::uint32_t kCancelPollStride = 32;

bool Cancelled(const CancelFlag* cancel) {
  return cancel != nullptr && cancel->cancelled();
}

}  // namespace

int HnswIndex::DrawLevel() {
  const double ml = 1.0 / std::log(static_cast<double>(options_.M));
  const double u = std::max(level_rng_.NextDouble(), 1e-12);
  ++level_draws_;
  return static_cast<int>(-std::log(u) * ml);
}

const float* HnswIndex::NodeVec(std::uint32_t id,
                                std::vector<float>* scratch) const {
  if (!store_.quantized()) {
    return store_.Fp32Data() + static_cast<std::size_t>(id) * dim_;
  }
  scratch->resize(dim_);
  store_.Decode(id, scratch->data());
  return scratch->data();
}

Status HnswIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (options_.M < 2) {
    // The level distribution uses mL = 1/ln(M): M == 1 would divide by
    // ln(1) = 0 and M == 0 has no graph at all.
    return Status::InvalidArgument("M must be >= 2");
  }
  n_ = n;
  dim_ = dim;
  store_.Reset(options_.quant.codec, dim);
  store_.Append(data, n);
  links_.assign(n, {});
  levels_.assign(n, 0);
  entry_ = 0;
  max_level_ = -1;
  // Geometric level draws (mL = 1/ln(M)) with a fixed seed keep the graph
  // deterministic across rebuilds of the same data; Add() continues the
  // same stream for appended nodes.
  level_rng_ = Rng(options_.seed);
  level_draws_ = 0;
  if (n == 0) return Status::OK();

  for (std::uint32_t i = 0; i < n; ++i) {
    const int level = DrawLevel();
    levels_[i] = level;
    links_[i].assign(static_cast<std::size_t>(level) + 1, {});
  }

  // Canonical batched construction. The first build_bootstrap nodes
  // insert one-at-a-time (each sees all of its predecessors). After
  // that, nodes insert in id-ordered batches: every batch member plans
  // its links against the graph as frozen at the batch start — plus the
  // earlier members of its own batch, folded in by exact scoring, so no
  // candidate a sequential insert would have seen goes missing — then
  // the plans apply in canonical order (phase B). The batch schedule,
  // the frozen-snapshot searches, and the canonical application make the
  // graph a pure function of (data, options) — identical with or without
  // a pool — while phase A, where nearly all distance computations
  // happen, scales with cores. Batch size grows with the graph (cur / 4,
  // capped) so members search a structure several times their batch, and
  // the cap keeps the exact intra-batch scoring linear overall.
  const std::uint32_t bootstrap = static_cast<std::uint32_t>(
      std::min<std::size_t>(n, std::max<std::size_t>(1,
                                                     options_.build_bootstrap)));
  for (std::uint32_t i = 0; i < bootstrap; ++i) {
    if (i % kCancelPollStride == 0 && Cancelled(options_.cancel)) {
      return Status::Cancelled("hnsw build cancelled");
    }
    Insert(i, levels_[i]);
  }

  TaskRunner* pool = options_.build_pool;
  std::vector<InsertPlan> plans;
  for (std::uint32_t cur = bootstrap; cur < n;) {
    // Batch-level cancellation check: a flipped flag aborts construction
    // within one batch instead of after the whole multi-second build.
    if (Cancelled(options_.cancel)) {
      return Status::Cancelled("hnsw build cancelled");
    }
    const std::size_t batch = std::min<std::size_t>(
        {n - cur, std::max<std::size_t>(128, cur / 4), std::size_t{1024}});
    plans.assign(batch, {});
    if (pool != nullptr && pool->num_threads() > 1 && batch > 1) {
      pool->ParallelFor(
          batch,
          [&](std::size_t begin, std::size_t end) {
            std::vector<char> visited(n_, 0);
            for (std::size_t j = begin; j < end; ++j) {
              const std::uint32_t id = cur + static_cast<std::uint32_t>(j);
              plans[j] = PlanInsert(id, levels_[id], cur, &visited);
            }
          },
          /*min_chunk=*/1);
    } else {
      std::vector<char> visited(n_, 0);
      for (std::size_t j = 0; j < batch; ++j) {
        const std::uint32_t id = cur + static_cast<std::uint32_t>(j);
        plans[j] = PlanInsert(id, levels_[id], cur, &visited);
      }
    }
    ApplyBatch(cur, batch, &plans);
    cur += static_cast<std::uint32_t>(batch);
  }
  return Status::OK();
}

HnswIndex::InsertPlan HnswIndex::PlanInsert(std::uint32_t id, int level,
                                            std::uint32_t batch_first,
                                            std::vector<char>* visited) const {
  // Mirrors Insert()'s search half on the frozen graph: greedy descent
  // through the upper layers, then an ef_construction beam per layer with
  // the Malkov-Yashunin neighbor selection. No writes.
  InsertPlan plan;
  plan.links.assign(static_cast<std::size_t>(level) + 1, {});
  std::vector<float> qbuf;
  const float* q = NodeVec(id, &qbuf);
  const float pre = store_.QueryPrecompute(q);
  std::uint32_t ep = entry_;
  for (int layer = max_level_; layer > level; --layer) {
    ep = GreedyStep(q, pre, ep, layer);
  }
  // Earlier batch members are invisible to the frozen-graph search, so
  // score them exactly once (one contiguous batch-kernel call) and merge
  // them into every layer's candidate set below — the same neighbors a
  // sequential insert would have reached through the graph.
  std::vector<ScoredId> peers;
  if (id > batch_first) {
    const std::size_t peer_count = id - batch_first;
    std::vector<float> peer_scores(peer_count);
    store_.ScoreRange(q, pre, batch_first, peer_count, peer_scores.data());
    peers.reserve(peer_count);
    for (std::size_t i = 0; i < peer_count; ++i) {
      peers.push_back(
          {batch_first + static_cast<std::uint32_t>(i), peer_scores[i]});
    }
  }
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<ScoredId> found =
        SearchLayer(q, pre, ep, options_.ef_construction, layer, visited);
    std::sort(found.begin(), found.end(), ScoreGreater{});
    if (!found.empty()) ep = found.front().id;
    for (const ScoredId& peer : peers) {
      if (levels_[peer.id] >= layer) found.push_back(peer);
    }
    if (!peers.empty()) std::sort(found.begin(), found.end(), ScoreGreater{});
    plan.links[layer] = SelectNeighbors(found, MaxDegree(layer));
  }
  return plan;
}

void HnswIndex::ApplyBatch(std::uint32_t first, std::size_t count,
                           std::vector<InsertPlan>* plans) {
  // Own links first (batch members may point at pre-batch nodes and at
  // earlier batch peers); the reverse-edge pass below runs strictly
  // after, so a peer's list is complete before anything appends to it.
  for (std::size_t j = 0; j < count; ++j) {
    InsertPlan& plan = (*plans)[j];
    const std::uint32_t id = first + static_cast<std::uint32_t>(j);
    const int top = static_cast<int>(plan.links.size()) - 1;
    for (int layer = std::min(top, max_level_); layer >= 0; --layer) {
      links_[id][layer] = std::move(plan.links[layer]);
    }
  }

  // Reverse edges, grouped by (target, layer) in canonical order: each
  // group appends its new ids (ascending) and re-selects the target's
  // links once. Distinct groups touch disjoint adjacency lists, so the
  // groups can fan out over the pool without changing the result.
  struct Edge {
    std::uint32_t target;
    int layer;
    std::uint32_t id;
  };
  std::vector<Edge> edges;
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t id = first + static_cast<std::uint32_t>(j);
    for (std::size_t layer = 0; layer < links_[id].size(); ++layer) {
      for (const std::uint32_t nb : links_[id][layer]) {
        edges.push_back({nb, static_cast<int>(layer), id});
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.target < b.target ||
           (a.target == b.target &&
            (a.layer < b.layer || (a.layer == b.layer && a.id < b.id)));
  });
  std::vector<std::size_t> group_starts;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i == 0 || edges[i].target != edges[i - 1].target ||
        edges[i].layer != edges[i - 1].layer) {
      group_starts.push_back(i);
    }
  }
  group_starts.push_back(edges.size());

  auto apply_groups = [&](std::size_t begin, std::size_t end) {
    for (std::size_t g = begin; g < end; ++g) {
      const std::size_t lo = group_starts[g];
      const std::size_t hi = group_starts[g + 1];
      const std::uint32_t target = edges[lo].target;
      const int layer = edges[lo].layer;
      auto& nbrs = links_[target][layer];
      for (std::size_t i = lo; i < hi; ++i) nbrs.push_back(edges[i].id);
      ShrinkLinks(target, layer);
    }
  };
  const std::size_t groups = group_starts.size() - 1;
  TaskRunner* pool = options_.build_pool;
  if (pool != nullptr && pool->num_threads() > 1 && groups > 1) {
    pool->ParallelFor(groups, apply_groups, /*min_chunk=*/8);
  } else {
    apply_groups(0, groups);
  }

  // Entry-point handover in id order, exactly as sequential inserts
  // would have done it.
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t id = first + static_cast<std::uint32_t>(j);
    if (levels_[id] > max_level_) {
      max_level_ = levels_[id];
      entry_ = id;
    }
  }
}

std::uint32_t HnswIndex::GreedyStep(const float* query, float query_pre,
                                    std::uint32_t entry, int layer) const {
  std::uint32_t cur = entry;
  float cur_score = store_.ScoreOne(query, query_pre, cur);
  std::vector<float> scores;
  for (;;) {
    const auto& nbrs = links_[cur][layer];
    if (nbrs.empty()) return cur;
    // One gather-batch call scores the whole adjacency list.
    scores.resize(nbrs.size());
    store_.ScoreIds(query, query_pre, nbrs.data(), nbrs.size(),
                    scores.data());
    bool improved = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (scores[i] > cur_score) {
        cur = nbrs[i];
        cur_score = scores[i];
        improved = true;
      }
    }
    if (!improved) return cur;
  }
}

std::vector<ScoredId> HnswIndex::SearchLayer(const float* query,
                                             float query_pre,
                                             std::uint32_t entry,
                                             std::size_t ef, int layer,
                                             std::vector<char>* visited) const {
  std::fill(visited->begin(), visited->end(), 0);
  std::priority_queue<ScoredId, std::vector<ScoredId>, ScoreLess> candidates;
  std::priority_queue<ScoredId, std::vector<ScoredId>, ScoreGreater> results;

  const float entry_score = store_.ScoreOne(query, query_pre, entry);
  (*visited)[entry] = 1;
  candidates.push({entry, entry_score});
  results.push({entry, entry_score});

  std::vector<std::uint32_t> fresh;
  std::vector<float> scores;
  fresh.reserve(MaxDegree(layer));
  scores.reserve(MaxDegree(layer));
  while (!candidates.empty()) {
    const ScoredId c = candidates.top();
    candidates.pop();
    if (results.size() >= ef && c.score < results.top().score) break;
    // Collect the node's unvisited links, then score them in one
    // gather-batch kernel call (prefetch hides the row loads).
    fresh.clear();
    for (const std::uint32_t nb : links_[c.id][layer]) {
      if ((*visited)[nb]) continue;
      (*visited)[nb] = 1;
      fresh.push_back(nb);
    }
    if (fresh.empty()) continue;
    scores.resize(fresh.size());
    store_.ScoreIds(query, query_pre, fresh.data(), fresh.size(),
                    scores.data());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      const float s = scores[i];
      if (results.size() < ef || s > results.top().score) {
        candidates.push({fresh[i], s});
        results.push({fresh[i], s});
        if (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<ScoredId> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  return out;
}

std::vector<std::uint32_t> HnswIndex::SelectNeighbors(
    const std::vector<ScoredId>& candidates, std::size_t m) const {
  std::vector<std::uint32_t> selected, pruned;
  std::vector<float> cbuf;
  for (const ScoredId& cand : candidates) {
    if (selected.size() >= m) break;
    const float* cq = NodeVec(cand.id, &cbuf);
    const float cpre = store_.QueryPrecompute(cq);
    bool keep = true;
    for (const std::uint32_t s : selected) {
      if (store_.ScoreOne(cq, cpre, s) > cand.score) {
        keep = false;
        break;
      }
    }
    (keep ? selected : pruned).push_back(cand.id);
  }
  for (const std::uint32_t id : pruned) {
    if (selected.size() >= m) break;
    selected.push_back(id);
  }
  return selected;
}

void HnswIndex::ShrinkLinks(std::uint32_t node, int layer) {
  auto& nbrs = links_[node][layer];
  const std::size_t cap = MaxDegree(layer);
  if (nbrs.size() <= cap) return;
  std::vector<float> vbuf;
  const float* v = NodeVec(node, &vbuf);
  const float pre = store_.QueryPrecompute(v);
  std::vector<ScoredId> scored;
  scored.reserve(nbrs.size());
  std::vector<float> scores(nbrs.size());
  store_.ScoreIds(v, pre, nbrs.data(), nbrs.size(), scores.data());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    scored.push_back({nbrs[i], scores[i]});
  }
  std::sort(scored.begin(), scored.end(), ScoreGreater{});
  nbrs = SelectNeighbors(scored, cap);
}

void HnswIndex::Insert(std::uint32_t id, int level) {
  if (max_level_ < 0) {  // first node
    entry_ = id;
    max_level_ = level;
    return;
  }

  std::vector<float> qbuf;
  const float* q = NodeVec(id, &qbuf);
  const float pre = store_.QueryPrecompute(q);
  std::uint32_t ep = entry_;
  for (int layer = max_level_; layer > level; --layer) {
    ep = GreedyStep(q, pre, ep, layer);
  }

  std::vector<char> visited(n_, 0);
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<ScoredId> found =
        SearchLayer(q, pre, ep, options_.ef_construction, layer, &visited);
    std::sort(found.begin(), found.end(), ScoreGreater{});
    auto& own = links_[id][layer];
    own = SelectNeighbors(found, MaxDegree(layer));
    for (const std::uint32_t nb : own) {
      links_[nb][layer].push_back(id);
      ShrinkLinks(nb, layer);
    }
    if (!found.empty()) ep = found.front().id;
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_ = id;
  }
}

std::vector<ScoredId> HnswIndex::TopK(const float* query,
                                      std::size_t k) const {
  if (n_ == 0 || k == 0) return {};
  const float pre = store_.QueryPrecompute(query);
  std::uint32_t ep = entry_;
  for (int layer = max_level_; layer > 0; --layer) {
    ep = GreedyStep(query, pre, ep, layer);
  }
  // Quantized codecs over-fetch so the exact re-rank below can repair
  // ordering errors inside the top-k band.
  const std::size_t fetch =
      store_.quantized()
          ? std::max(k, k * std::max<std::size_t>(
                            options_.quant.rescore_factor, 1))
          : k;
  std::vector<char> visited(n_, 0);
  std::vector<ScoredId> found = SearchLayer(
      query, pre, ep, std::max(options_.ef_search, fetch), 0, &visited);
  std::sort(found.begin(), found.end(), ScoreGreater{});
  if (found.size() > fetch) found.resize(fetch);
  if (!store_.quantized()) {
    if (found.size() > k) found.resize(k);
    return found;
  }
  std::vector<float> scratch(dim_);
  TopKCollector rescored(k);
  for (const ScoredId& cand : found) {
    rescored.Offer(cand.id,
                   store_.RescoreOne(query, cand.id, scratch.data()));
  }
  return rescored.TakeSorted();
}

void HnswIndex::RangeSearch(const float* query, float threshold,
                            std::vector<ScoredId>* out) const {
  if (n_ == 0) return;
  const float pre = store_.QueryPrecompute(query);
  std::uint32_t ep = entry_;
  for (int layer = max_level_; layer > 0; --layer) {
    ep = GreedyStep(query, pre, ep, layer);
  }
  // Seed the threshold region with an ef_search beam, then flood-fill the
  // layer-0 graph over nodes scoring within range_slack of the threshold.
  // Only exact hits (>= threshold) are reported: no false positives —
  // quantized codecs widen the exploration band by the codec's error
  // bound and re-verify every hit with exact fp32 arithmetic.
  std::vector<char> visited(n_, 0);
  std::vector<ScoredId> seeds =
      SearchLayer(query, pre, ep, options_.ef_search, 0, &visited);

  const float quant_slack = store_.ScoreSlack();
  const float explore = threshold - options_.range_slack - quant_slack;
  const float gate = threshold - quant_slack;
  std::vector<float> scratch(dim_);
  auto emit = [&](std::uint32_t id, float approx_score) {
    if (approx_score < gate) return;
    if (!store_.quantized()) {
      out->push_back({id, approx_score});
      return;
    }
    const float exact = store_.RescoreOne(query, id, scratch.data());
    if (exact >= threshold) out->push_back({id, exact});
  };
  std::fill(visited.begin(), visited.end(), 0);
  std::vector<std::uint32_t> frontier;
  std::vector<float> scores;
  for (const ScoredId& s : seeds) {
    visited[s.id] = 1;
    emit(s.id, s.score);
    if (s.score >= explore) frontier.push_back(s.id);
  }
  std::vector<std::uint32_t> fresh;
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.back();
    frontier.pop_back();
    fresh.clear();
    for (const std::uint32_t nb : links_[cur][0]) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      fresh.push_back(nb);
    }
    if (fresh.empty()) continue;
    scores.resize(fresh.size());
    store_.ScoreIds(query, pre, fresh.data(), fresh.size(), scores.data());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      emit(fresh[i], scores[i]);
      if (scores[i] >= explore) frontier.push_back(fresh[i]);
    }
  }
}

Status HnswIndex::Add(const float* data, std::size_t n, std::size_t dim) {
  if (dim_ == 0) return Build(data, n, dim);
  if (dim != dim_) return Status::InvalidArgument("hnsw Add: dim mismatch");
  if (n == 0) return Status::OK();

  const std::uint32_t first = static_cast<std::uint32_t>(n_);
  store_.Append(data, n);
  n_ += n;
  levels_.resize(n_, 0);
  links_.resize(n_);
  for (std::size_t i = first; i < n_; ++i) {
    const int level = DrawLevel();
    levels_[i] = level;
    links_[i].assign(static_cast<std::size_t>(level) + 1, {});
  }
  // Sequential canonical inserts — exactly the algorithm the batched
  // build reproduces, applied to the appended suffix. Appends are small
  // relative to the graph (large deltas are cheaper as rebuilds), so no
  // batching machinery is warranted here.
  for (std::size_t i = first; i < n_; ++i) {
    if ((i - first) % kCancelPollStride == 0 && Cancelled(options_.cancel)) {
      return Status::Cancelled("hnsw incremental insert cancelled");
    }
    Insert(static_cast<std::uint32_t>(i), levels_[i]);
  }
  return Status::OK();
}

namespace {
constexpr std::uint32_t kHnswMagic = 0x43484E57;  // "CHNW"
// v2: codec-encoded base vectors (kind byte + blobs) instead of raw fp32.
constexpr std::uint32_t kHnswVersion = 2;
}  // namespace

Status HnswIndex::Save(std::ostream& out) const {
  CRE_RETURN_NOT_OK(vecio::WriteTag(out, kHnswMagic, kHnswVersion));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.M));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.ef_construction));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.ef_search));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.seed));
  CRE_RETURN_NOT_OK(vecio::WritePod<float>(out, options_.range_slack));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.build_bootstrap));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, n_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, dim_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint32_t>(out, entry_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::int32_t>(out, max_level_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, level_draws_));
  CRE_RETURN_NOT_OK(store_.Save(out));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, levels_));
  for (const auto& per_node : links_) {
    CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, per_node.size()));
    for (const auto& layer : per_node) {
      CRE_RETURN_NOT_OK(vecio::WriteVec(out, layer));
    }
  }
  return Status::OK();
}

Status HnswIndex::Load(std::istream& in) {
  CRE_RETURN_NOT_OK(vecio::ExpectTag(in, kHnswMagic, kHnswVersion, "hnsw"));
  std::uint64_t m = 0, efc = 0, efs = 0, seed = 0, bootstrap = 0;
  std::uint64_t n = 0, dim = 0, draws = 0;
  float slack = 0;
  std::uint32_t entry = 0;
  std::int32_t max_level = -1;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &m));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &efc));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &efs));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &seed));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &slack));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &bootstrap));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &n));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &dim));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &entry));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &max_level));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &draws));
  // Build and Add each consume exactly one level draw per node, so an
  // honest image always has draws == n; anything else is corruption (and
  // an unbounded value would spin the fast-forward loop below forever).
  // The n/dim caps additionally keep the n*dim consistency check below
  // far from uint64 wraparound.
  if (m < 2 || m > 1024 || dim == 0 || dim > vecio::kMaxDim ||
      n > vecio::kMaxArrayElems || draws != n) {
    return Status::InvalidArgument("hnsw load: implausible header");
  }
  CRE_RETURN_NOT_OK(store_.Load(in, static_cast<std::size_t>(n),
                                static_cast<std::size_t>(dim)));
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &levels_));
  if (levels_.size() != n || (n > 0 && entry >= n)) {
    return Status::InvalidArgument("hnsw load: inconsistent sizes");
  }
  for (const int level : levels_) {
    if (level < 0 || level > 63) {
      return Status::InvalidArgument("hnsw load: level out of range");
    }
  }
  links_.assign(static_cast<std::size_t>(n), {});
  for (std::size_t node = 0; node < links_.size(); ++node) {
    auto& per_node = links_[node];
    std::uint64_t layer_count = 0;
    CRE_RETURN_NOT_OK(vecio::ReadPod(in, &layer_count));
    // Every search indexes links_[x][layer] for layer <= levels_[x], so
    // the structural invariants of a real build must hold before the
    // graph is trusted: one adjacency list per level (inclusive), and
    // every link at layer L pointing at a node that reaches layer L.
    if (layer_count > 64 ||
        layer_count != static_cast<std::uint64_t>(levels_[node]) + 1) {
      return Status::InvalidArgument("hnsw load: implausible layer count");
    }
    per_node.resize(static_cast<std::size_t>(layer_count));
    for (std::size_t layer = 0; layer < per_node.size(); ++layer) {
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &per_node[layer]));
      for (const std::uint32_t id : per_node[layer]) {
        if (id >= n ||
            static_cast<std::size_t>(levels_[id]) < layer) {
          return Status::InvalidArgument("hnsw load: link out of range");
        }
      }
    }
  }
  if (n > 0) {
    int top = 0;
    for (const int level : levels_) top = std::max(top, level);
    // The greedy descent starts at (entry, max_level): both must match
    // the actual level structure or the first search walks off a layer.
    if (max_level < 0 || max_level != top || levels_[entry] != max_level) {
      return Status::InvalidArgument("hnsw load: inconsistent entry point");
    }
  } else if (max_level != -1) {
    return Status::InvalidArgument("hnsw load: inconsistent entry point");
  }
  // Build-structural options are restored from the image (M bounds the
  // stored adjacency lists, seed/ef_construction/bootstrap keep future
  // Adds deterministic, and the codec shapes every stored score);
  // query-time knobs (ef_search, range_slack, rescore_factor) stay as
  // configured on this instance — a recall/latency setting change must
  // take effect on warm starts, not silently revert to save-time values.
  (void)efs;
  (void)slack;
  options_.M = static_cast<std::size_t>(m);
  options_.ef_construction = static_cast<std::size_t>(efc);
  options_.seed = seed;
  options_.build_bootstrap = static_cast<std::size_t>(bootstrap);
  options_.quant.codec = store_.kind();
  n_ = static_cast<std::size_t>(n);
  dim_ = static_cast<std::size_t>(dim);
  entry_ = entry;
  max_level_ = static_cast<int>(max_level);
  // Fast-forward the level stream to where the saved index left it, so a
  // post-load Add draws exactly what the saved instance would have drawn.
  level_rng_ = Rng(options_.seed);
  for (std::uint64_t i = 0; i < draws; ++i) level_rng_.NextDouble();
  level_draws_ = draws;
  return Status::OK();
}

std::uint64_t HnswIndex::GraphChecksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = HashCombine(h, entry_);
  h = HashCombine(h, static_cast<std::uint64_t>(max_level_ + 1));
  for (std::size_t i = 0; i < n_; ++i) {
    h = HashCombine(h, static_cast<std::uint64_t>(levels_[i]));
    for (const auto& layer : links_[i]) {
      h = HashCombine(h, layer.size());
      for (const std::uint32_t id : layer) h = HashCombine(h, id);
    }
  }
  return h;
}

std::size_t HnswIndex::MemoryBytes() const {
  std::size_t bytes = store_.MemoryBytes() + levels_.size() * sizeof(int);
  for (const auto& per_node : links_) {
    for (const auto& layer : per_node) {
      bytes += layer.size() * sizeof(std::uint32_t) +
               sizeof(std::vector<std::uint32_t>);
    }
  }
  return bytes;
}

}  // namespace cre
