#include "vecsim/hnsw_index.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/rng.h"

namespace cre {

namespace {

/// Max-heap on score (best candidate on top).
struct ScoreLess {
  bool operator()(const ScoredId& a, const ScoredId& b) const {
    return a.score < b.score || (a.score == b.score && a.id > b.id);
  }
};

/// Min-heap on score (worst retained result on top).
struct ScoreGreater {
  bool operator()(const ScoredId& a, const ScoredId& b) const {
    return a.score > b.score || (a.score == b.score && a.id < b.id);
  }
};

}  // namespace

Status HnswIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (options_.M < 2) {
    // The level distribution uses mL = 1/ln(M): M == 1 would divide by
    // ln(1) = 0 and M == 0 has no graph at all.
    return Status::InvalidArgument("M must be >= 2");
  }
  n_ = n;
  dim_ = dim;
  dot_ = GetDotKernel(BestKernelVariant());
  data_.assign(data, data + n * dim);
  links_.assign(n, {});
  levels_.assign(n, 0);
  entry_ = 0;
  max_level_ = -1;
  if (n == 0) return Status::OK();

  // Geometric level draws (mL = 1/ln(M)) with a fixed seed keep the graph
  // deterministic across rebuilds of the same data.
  Rng rng(options_.seed);
  const double ml = 1.0 / std::log(static_cast<double>(options_.M));
  for (std::uint32_t i = 0; i < n; ++i) {
    const double u = std::max(rng.NextDouble(), 1e-12);
    const int level = static_cast<int>(-std::log(u) * ml);
    levels_[i] = level;
    links_[i].assign(static_cast<std::size_t>(level) + 1, {});
    Insert(i, level);
  }
  return Status::OK();
}

std::uint32_t HnswIndex::GreedyStep(const float* query, std::uint32_t entry,
                                    int layer) const {
  std::uint32_t cur = entry;
  float cur_score = dot_(query, Vec(cur), dim_);
  for (;;) {
    bool improved = false;
    for (const std::uint32_t nb : links_[cur][layer]) {
      const float s = dot_(query, Vec(nb), dim_);
      if (s > cur_score) {
        cur = nb;
        cur_score = s;
        improved = true;
      }
    }
    if (!improved) return cur;
  }
}

std::vector<ScoredId> HnswIndex::SearchLayer(const float* query,
                                             std::uint32_t entry,
                                             std::size_t ef, int layer,
                                             std::vector<char>* visited) const {
  std::fill(visited->begin(), visited->end(), 0);
  std::priority_queue<ScoredId, std::vector<ScoredId>, ScoreLess> candidates;
  std::priority_queue<ScoredId, std::vector<ScoredId>, ScoreGreater> results;

  const float entry_score = dot_(query, Vec(entry), dim_);
  (*visited)[entry] = 1;
  candidates.push({entry, entry_score});
  results.push({entry, entry_score});

  while (!candidates.empty()) {
    const ScoredId c = candidates.top();
    candidates.pop();
    if (results.size() >= ef && c.score < results.top().score) break;
    for (const std::uint32_t nb : links_[c.id][layer]) {
      if ((*visited)[nb]) continue;
      (*visited)[nb] = 1;
      const float s = dot_(query, Vec(nb), dim_);
      if (results.size() < ef || s > results.top().score) {
        candidates.push({nb, s});
        results.push({nb, s});
        if (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<ScoredId> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  return out;
}

std::vector<std::uint32_t> HnswIndex::SelectNeighbors(
    const std::vector<ScoredId>& candidates, std::size_t m) const {
  std::vector<std::uint32_t> selected, pruned;
  for (const ScoredId& cand : candidates) {
    if (selected.size() >= m) break;
    bool keep = true;
    for (const std::uint32_t s : selected) {
      if (dot_(Vec(cand.id), Vec(s), dim_) > cand.score) {
        keep = false;
        break;
      }
    }
    (keep ? selected : pruned).push_back(cand.id);
  }
  for (const std::uint32_t id : pruned) {
    if (selected.size() >= m) break;
    selected.push_back(id);
  }
  return selected;
}

void HnswIndex::ShrinkLinks(std::uint32_t node, int layer) {
  auto& nbrs = links_[node][layer];
  const std::size_t cap = MaxDegree(layer);
  if (nbrs.size() <= cap) return;
  const float* v = Vec(node);
  std::vector<ScoredId> scored;
  scored.reserve(nbrs.size());
  for (const std::uint32_t id : nbrs) {
    scored.push_back({id, dot_(v, Vec(id), dim_)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredId& a, const ScoredId& b) {
              return a.score > b.score || (a.score == b.score && a.id < b.id);
            });
  nbrs = SelectNeighbors(scored, cap);
}

void HnswIndex::Insert(std::uint32_t id, int level) {
  if (max_level_ < 0) {  // first node
    entry_ = id;
    max_level_ = level;
    return;
  }

  const float* q = Vec(id);
  std::uint32_t ep = entry_;
  for (int layer = max_level_; layer > level; --layer) {
    ep = GreedyStep(q, ep, layer);
  }

  std::vector<char> visited(n_, 0);
  for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
    std::vector<ScoredId> found =
        SearchLayer(q, ep, options_.ef_construction, layer, &visited);
    std::sort(found.begin(), found.end(),
              [](const ScoredId& a, const ScoredId& b) {
                return a.score > b.score ||
                       (a.score == b.score && a.id < b.id);
              });
    auto& own = links_[id][layer];
    own = SelectNeighbors(found, MaxDegree(layer));
    for (const std::uint32_t nb : own) {
      links_[nb][layer].push_back(id);
      ShrinkLinks(nb, layer);
    }
    if (!found.empty()) ep = found.front().id;
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_ = id;
  }
}

std::vector<ScoredId> HnswIndex::TopK(const float* query,
                                      std::size_t k) const {
  if (n_ == 0 || k == 0) return {};
  std::uint32_t ep = entry_;
  for (int layer = max_level_; layer > 0; --layer) {
    ep = GreedyStep(query, ep, layer);
  }
  std::vector<char> visited(n_, 0);
  std::vector<ScoredId> found = SearchLayer(
      query, ep, std::max(options_.ef_search, k), 0, &visited);
  std::sort(found.begin(), found.end(),
            [](const ScoredId& a, const ScoredId& b) {
              return a.score > b.score || (a.score == b.score && a.id < b.id);
            });
  if (found.size() > k) found.resize(k);
  return found;
}

void HnswIndex::RangeSearch(const float* query, float threshold,
                            std::vector<ScoredId>* out) const {
  if (n_ == 0) return;
  std::uint32_t ep = entry_;
  for (int layer = max_level_; layer > 0; --layer) {
    ep = GreedyStep(query, ep, layer);
  }
  // Seed the threshold region with an ef_search beam, then flood-fill the
  // layer-0 graph over nodes scoring within range_slack of the threshold.
  // Only exact hits (>= threshold) are reported: no false positives.
  std::vector<char> visited(n_, 0);
  std::vector<ScoredId> seeds =
      SearchLayer(query, ep, options_.ef_search, 0, &visited);

  const float explore = threshold - options_.range_slack;
  std::fill(visited.begin(), visited.end(), 0);
  std::vector<std::uint32_t> frontier;
  for (const ScoredId& s : seeds) {
    visited[s.id] = 1;
    if (s.score >= threshold) out->push_back(s);
    if (s.score >= explore) frontier.push_back(s.id);
  }
  while (!frontier.empty()) {
    const std::uint32_t cur = frontier.back();
    frontier.pop_back();
    for (const std::uint32_t nb : links_[cur][0]) {
      if (visited[nb]) continue;
      visited[nb] = 1;
      const float s = dot_(query, Vec(nb), dim_);
      if (s >= threshold) out->push_back({nb, s});
      if (s >= explore) frontier.push_back(nb);
    }
  }
}

std::size_t HnswIndex::MemoryBytes() const {
  std::size_t bytes = data_.size() * sizeof(float) +
                      levels_.size() * sizeof(int);
  for (const auto& per_node : links_) {
    for (const auto& layer : per_node) {
      bytes += layer.size() * sizeof(std::uint32_t) +
               sizeof(std::vector<std::uint32_t>);
    }
  }
  return bytes;
}

}  // namespace cre
