#ifndef CRE_VECSIM_KERNELS_H_
#define CRE_VECSIM_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cre {

/// Physical implementations of the dense dot/cosine kernel. The runtime
/// dispatch across variants is the engine's JIT-lite late-binding layer
/// (paper Sec. VI): the same logical operator binds to a different code
/// path depending on detected hardware capability.
enum class KernelVariant {
  kScalar = 0,   ///< straightforward loop
  kUnrolled,     ///< 4-way unrolled with independent accumulators
  kAvx2,         ///< 8-lane FMA when compiled & running with AVX2
  kHalf,         ///< FP16-stored operands, float accumulation
};

const char* KernelVariantName(KernelVariant v);

/// True when the host CPU supports AVX2+FMA at runtime.
bool CpuSupportsAvx2();

/// Best variant available on this host (kAvx2 when possible else kUnrolled).
KernelVariant BestKernelVariant();

// ---- float32 kernels ----
float DotScalar(const float* a, const float* b, std::size_t dim);
float DotUnrolled(const float* a, const float* b, std::size_t dim);
float DotAvx2(const float* a, const float* b, std::size_t dim);

/// FP16 operands (both sides), float32 accumulation.
float DotHalf(const std::uint16_t* a, const std::uint16_t* b,
              std::size_t dim);

/// Function-pointer type used by the dispatch registry.
using DotFn = float (*)(const float*, const float*, std::size_t);

/// Returns the float32 kernel for `variant` (kHalf is handled separately
/// because its operand type differs).
DotFn GetDotKernel(KernelVariant variant);

/// L2 norm.
float Norm(const float* a, std::size_t dim);

/// Scales `a` to unit norm in place (no-op for the zero vector).
void NormalizeInPlace(float* a, std::size_t dim);

/// Cosine similarity for not-necessarily-normalized inputs.
float Cosine(const float* a, const float* b, std::size_t dim);

/// Squared L2 distance.
float L2Sq(const float* a, const float* b, std::size_t dim);

}  // namespace cre

#endif  // CRE_VECSIM_KERNELS_H_
