#ifndef CRE_VECSIM_KERNELS_H_
#define CRE_VECSIM_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace cre {

/// Physical implementations of the dense dot/cosine kernel. The runtime
/// dispatch across variants is the engine's JIT-lite late-binding layer
/// (paper Sec. VI): the same logical operator binds to a different code
/// path depending on detected hardware capability. The SIMD bodies live
/// in per-variant translation units (kernels_avx2.cc / kernels_avx512.cc)
/// compiled with their own ISA flags, so a generic build still carries
/// them and binds the widest supported one at startup via CPUID.
enum class KernelVariant {
  kScalar = 0,   ///< straightforward loop
  kUnrolled,     ///< 4-way unrolled with independent accumulators
  kAvx2,         ///< 8-lane FMA when the host CPU has AVX2+FMA
  kAvx512,       ///< 16-lane FMA when the host CPU has AVX-512F
  kHalf,         ///< FP16-stored operands, float accumulation
};

/// Number of float32 variants a calibration sweep covers (scalar, unrolled,
/// avx2, avx512) — kHalf is excluded because its operand type differs.
constexpr int kNumFloatKernelVariants = 4;

const char* KernelVariantName(KernelVariant v);

/// True when the host CPU supports AVX2+FMA+F16C at runtime (and the build
/// carries the AVX2 translation unit).
bool CpuSupportsAvx2();

/// True when the host CPU supports AVX-512F at runtime (and the build
/// carries the AVX-512 translation unit).
bool CpuSupportsAvx512();

/// Widest variant available on this host (kAvx512 > kAvx2 > kUnrolled).
KernelVariant BestKernelVariant();

// ---- float32 kernels, one pair at a time ----
float DotScalar(const float* a, const float* b, std::size_t dim);
float DotUnrolled(const float* a, const float* b, std::size_t dim);
/// Fall back to DotUnrolled when the host lacks the ISA.
float DotAvx2(const float* a, const float* b, std::size_t dim);
float DotAvx512(const float* a, const float* b, std::size_t dim);

/// FP16 operands (both sides), float32 accumulation.
float DotHalf(const std::uint16_t* a, const std::uint16_t* b,
              std::size_t dim);

// ---- float32 batch kernels (one query vs. many base rows) ----
// The hot loops of every index family score whole candidate blocks —
// brute-force scans, IVF posting lists, all the links of an HNSW node —
// so the one-to-many shape amortizes query loads and lets the kernel
// software-prefetch upcoming rows ahead of the FMA stream.

/// out[i] = dot(query, base + i*dim) for i in [0, n).
void DotBatchScalar(const float* query, const float* base, std::size_t n,
                    std::size_t dim, float* out);
void DotBatchUnrolled(const float* query, const float* base, std::size_t n,
                      std::size_t dim, float* out);
void DotBatchAvx2(const float* query, const float* base, std::size_t n,
                  std::size_t dim, float* out);
void DotBatchAvx512(const float* query, const float* base, std::size_t n,
                    std::size_t dim, float* out);

/// out[i] = dot(query, base + ids[i]*dim) — the gather shape used by HNSW
/// adjacency lists and IVF posting lists, prefetching rows ids[i+d] ahead.
void DotBatchGatherScalar(const float* query, const float* base,
                          const std::uint32_t* ids, std::size_t n,
                          std::size_t dim, float* out);
void DotBatchGatherUnrolled(const float* query, const float* base,
                            const std::uint32_t* ids, std::size_t n,
                            std::size_t dim, float* out);
void DotBatchGatherAvx2(const float* query, const float* base,
                        const std::uint32_t* ids, std::size_t n,
                        std::size_t dim, float* out);
void DotBatchGatherAvx512(const float* query, const float* base,
                          const std::uint32_t* ids, std::size_t n,
                          std::size_t dim, float* out);

// ---- asymmetric quantized-scoring kernels (fp32 query, encoded base) ----
// Used by the VectorCodec storage layer: the query stays full precision
// while the base side streams its compressed form, so scoring costs no
// decode pass and accuracy loss stays one-sided.

/// dot(query, decode(b)) with an fp16-encoded base row.
float DotHalfAsym(const float* query, const std::uint16_t* b,
                  std::size_t dim);
void DotHalfAsymBatch(const float* query, const std::uint16_t* base,
                      std::size_t n, std::size_t dim, float* out);
void DotHalfAsymGather(const float* query, const std::uint16_t* base,
                       const std::uint32_t* ids, std::size_t n,
                       std::size_t dim, float* out);

/// Raw integer-code dot: sum_i query[i] * codes[i]. The caller folds in the
/// per-vector scale/offset (dot ~= scale * raw + offset * sum(query)).
float DotInt8Asym(const float* query, const std::int8_t* codes,
                  std::size_t dim);
void DotInt8AsymBatch(const float* query, const std::int8_t* codes,
                      std::size_t n, std::size_t dim, float* out);
void DotInt8AsymGather(const float* query, const std::int8_t* codes,
                       const std::uint32_t* ids, std::size_t n,
                       std::size_t dim, float* out);

/// Function-pointer types used by the dispatch registry.
using DotFn = float (*)(const float*, const float*, std::size_t);
using DotBatchFn = void (*)(const float*, const float*, std::size_t,
                            std::size_t, float*);
using DotBatchGatherFn = void (*)(const float*, const float*,
                                  const std::uint32_t*, std::size_t,
                                  std::size_t, float*);

/// Returns the float32 kernel for `variant`, falling back to the widest
/// supported one when the host lacks the ISA (kHalf is handled separately
/// because its operand type differs).
DotFn GetDotKernel(KernelVariant variant);
DotBatchFn GetDotBatchKernel(KernelVariant variant);
DotBatchGatherFn GetDotBatchGatherKernel(KernelVariant variant);

/// L2 norm.
float Norm(const float* a, std::size_t dim);

/// Scales `a` to unit norm in place (no-op for the zero vector).
void NormalizeInPlace(float* a, std::size_t dim);

/// Cosine similarity for not-necessarily-normalized inputs.
float Cosine(const float* a, const float* b, std::size_t dim);

/// Squared L2 distance.
float L2Sq(const float* a, const float* b, std::size_t dim);

}  // namespace cre

#endif  // CRE_VECSIM_KERNELS_H_
