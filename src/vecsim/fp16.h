#ifndef CRE_VECSIM_FP16_H_
#define CRE_VECSIM_FP16_H_

#include <cstddef>
#include <cstdint>

namespace cre {

/// IEEE 754 binary16 conversion helpers (software implementation; the
/// compiler autovectorizes the bulk converters with F16C when available).
/// Half precision halves embedding-matrix footprint — the Sec. VI
/// "hardware-enabled half-precision inference" optimization.
std::uint16_t FloatToHalf(float f);
float HalfToFloat(std::uint16_t h);

/// Bulk converters.
void FloatsToHalves(const float* in, std::uint16_t* out, std::size_t n);
void HalvesToFloats(const std::uint16_t* in, float* out, std::size_t n);

}  // namespace cre

#endif  // CRE_VECSIM_FP16_H_
