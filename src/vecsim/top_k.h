#ifndef CRE_VECSIM_TOP_K_H_
#define CRE_VECSIM_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cre {

/// One similarity hit: an element id plus its score (higher is better).
struct ScoredId {
  std::uint32_t id = 0;
  float score = 0.f;
};

/// Bounded max-collector: keeps the k highest-scoring ids seen so far using
/// a min-heap of size k. Used by top-k similarity search (paper Sec. V:
/// "index structures for expediting ... top-k searches").
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) { heap_.reserve(k); }

  /// Offers one candidate.
  void Offer(std::uint32_t id, float score) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({id, score});
      std::push_heap(heap_.begin(), heap_.end(), MinCmp);
    } else if (score > heap_.front().score) {
      std::pop_heap(heap_.begin(), heap_.end(), MinCmp);
      heap_.back() = {id, score};
      std::push_heap(heap_.begin(), heap_.end(), MinCmp);
    }
  }

  /// Lowest score currently retained (only meaningful when full).
  float Floor() const {
    return heap_.size() < k_ ? -1e30f : heap_.front().score;
  }

  bool Full() const { return heap_.size() >= k_; }
  std::size_t size() const { return heap_.size(); }

  /// Extracts results sorted by descending score.
  std::vector<ScoredId> TakeSorted() {
    std::vector<ScoredId> out = std::move(heap_);
    std::sort(out.begin(), out.end(), [](const ScoredId& a, const ScoredId& b) {
      return a.score > b.score || (a.score == b.score && a.id < b.id);
    });
    return out;
  }

 private:
  static bool MinCmp(const ScoredId& a, const ScoredId& b) {
    return a.score > b.score;  // min-heap on score
  }

  std::size_t k_;
  std::vector<ScoredId> heap_;
};

}  // namespace cre

#endif  // CRE_VECSIM_TOP_K_H_
