#include "vecsim/codec.h"

#include <algorithm>
#include <cmath>

#include "vecsim/fp16.h"
#include "vecsim/index_io.h"

namespace cre {

const char* VectorCodecName(VectorCodecKind k) {
  switch (k) {
    case VectorCodecKind::kFp32:
      return "fp32";
    case VectorCodecKind::kFp16:
      return "fp16";
    case VectorCodecKind::kInt8:
      return "int8";
  }
  return "?";
}

void VectorStore::Reset(VectorCodecKind kind, std::size_t dim) {
  kind_ = kind;
  dim_ = dim;
  n_ = 0;
  fp32_.clear();
  fp16_.clear();
  int8_.clear();
  scale_.clear();
  offset_.clear();
}

void VectorStore::Append(const float* data, std::size_t n) {
  switch (kind_) {
    case VectorCodecKind::kFp32:
      fp32_.insert(fp32_.end(), data, data + n * dim_);
      break;
    case VectorCodecKind::kFp16: {
      const std::size_t old = fp16_.size();
      fp16_.resize(old + n * dim_);
      FloatsToHalves(data, fp16_.data() + old, n * dim_);
      break;
    }
    case VectorCodecKind::kInt8: {
      const std::size_t old = int8_.size();
      int8_.resize(old + n * dim_);
      for (std::size_t i = 0; i < n; ++i) {
        const float* v = data + i * dim_;
        float lo = v[0], hi = v[0];
        for (std::size_t d = 1; d < dim_; ++d) {
          lo = std::min(lo, v[d]);
          hi = std::max(hi, v[d]);
        }
        // Affine code c = round((v - offset) / scale), c in [-127, 127]:
        // offset centers the range so the full int8 span is used.
        const float offset = 0.5f * (lo + hi);
        const float scale = std::max((hi - lo) / 254.f, 1e-20f);
        const float inv = 1.f / scale;
        std::int8_t* c = int8_.data() + old + i * dim_;
        for (std::size_t d = 0; d < dim_; ++d) {
          const float q = std::round((v[d] - offset) * inv);
          c[d] = static_cast<std::int8_t>(
              std::max(-127.f, std::min(127.f, q)));
        }
        scale_.push_back(scale);
        offset_.push_back(offset);
      }
      break;
    }
  }
  n_ += n;
}

float VectorStore::QueryPrecompute(const float* query) const {
  if (kind_ != VectorCodecKind::kInt8) return 0.f;
  float sum = 0.f;
  for (std::size_t d = 0; d < dim_; ++d) sum += query[d];
  return sum;
}

void VectorStore::ScoreRange(const float* query, float query_pre,
                             std::size_t first, std::size_t count,
                             float* out) const {
  switch (kind_) {
    case VectorCodecKind::kFp32:
      GetDotBatchKernel(variant_)(query, fp32_.data() + first * dim_, count,
                                  dim_, out);
      break;
    case VectorCodecKind::kFp16:
      DotHalfAsymBatch(query, fp16_.data() + first * dim_, count, dim_, out);
      break;
    case VectorCodecKind::kInt8:
      DotInt8AsymBatch(query, int8_.data() + first * dim_, count, dim_, out);
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = scale_[first + i] * out[i] + offset_[first + i] * query_pre;
      }
      break;
  }
}

void VectorStore::ScoreIds(const float* query, float query_pre,
                           const std::uint32_t* ids, std::size_t count,
                           float* out) const {
  switch (kind_) {
    case VectorCodecKind::kFp32:
      GetDotBatchGatherKernel(variant_)(query, fp32_.data(), ids, count, dim_,
                                        out);
      break;
    case VectorCodecKind::kFp16:
      DotHalfAsymGather(query, fp16_.data(), ids, count, dim_, out);
      break;
    case VectorCodecKind::kInt8:
      DotInt8AsymGather(query, int8_.data(), ids, count, dim_, out);
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = scale_[ids[i]] * out[i] + offset_[ids[i]] * query_pre;
      }
      break;
  }
}

float VectorStore::ScoreOne(const float* query, float query_pre,
                            std::uint32_t id) const {
  switch (kind_) {
    case VectorCodecKind::kFp32:
      return GetDotKernel(variant_)(query, fp32_.data() + id * dim_, dim_);
    case VectorCodecKind::kFp16:
      return DotHalfAsym(query, fp16_.data() + id * dim_, dim_);
    case VectorCodecKind::kInt8:
      return scale_[id] * DotInt8Asym(query, int8_.data() + id * dim_, dim_) +
             offset_[id] * query_pre;
  }
  return 0.f;
}

void VectorStore::Decode(std::uint32_t id, float* out) const {
  switch (kind_) {
    case VectorCodecKind::kFp32:
      std::copy(fp32_.begin() + id * dim_, fp32_.begin() + (id + 1) * dim_,
                out);
      break;
    case VectorCodecKind::kFp16:
      HalvesToFloats(fp16_.data() + id * dim_, out, dim_);
      break;
    case VectorCodecKind::kInt8: {
      const std::int8_t* c = int8_.data() + id * dim_;
      const float scale = scale_[id], offset = offset_[id];
      for (std::size_t d = 0; d < dim_; ++d) {
        out[d] = scale * static_cast<float>(c[d]) + offset;
      }
      break;
    }
  }
}

float VectorStore::RescoreOne(const float* query, std::uint32_t id,
                              float* scratch) const {
  if (kind_ == VectorCodecKind::kFp32) {
    return GetDotKernel(variant_)(query, fp32_.data() + id * dim_, dim_);
  }
  Decode(id, scratch);
  return GetDotKernel(variant_)(query, scratch, dim_);
}

float VectorStore::ScoreSlack() const {
  switch (kind_) {
    case VectorCodecKind::kFp32:
      return 0.f;
    case VectorCodecKind::kFp16:
      // ~2^-11 relative per component; unit vectors keep the dot error
      // well under this.
      return 5e-3f;
    case VectorCodecKind::kInt8:
      // Per-component error <= scale/2 = (hi-lo)/508; summed against a
      // unit query this stays near 1/254.
      return 2e-2f;
  }
  return 0.f;
}

std::size_t VectorStore::MemoryBytes() const {
  return fp32_.size() * sizeof(float) + fp16_.size() * sizeof(std::uint16_t) +
         int8_.size() * sizeof(std::int8_t) +
         (scale_.size() + offset_.size()) * sizeof(float);
}

Status VectorStore::Save(std::ostream& out) const {
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint8_t>(
      out, static_cast<std::uint8_t>(kind_)));
  switch (kind_) {
    case VectorCodecKind::kFp32:
      return vecio::WriteVec(out, fp32_);
    case VectorCodecKind::kFp16:
      return vecio::WriteVec(out, fp16_);
    case VectorCodecKind::kInt8:
      CRE_RETURN_NOT_OK(vecio::WriteVec(out, int8_));
      CRE_RETURN_NOT_OK(vecio::WriteVec(out, scale_));
      return vecio::WriteVec(out, offset_);
  }
  return Status::InvalidArgument("codec save: unknown kind");
}

Status VectorStore::Load(std::istream& in, std::size_t expected_n,
                         std::size_t expected_dim) {
  std::uint8_t kind = 0;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &kind));
  if (kind > static_cast<std::uint8_t>(VectorCodecKind::kInt8)) {
    return Status::InvalidArgument("codec load: unknown codec kind");
  }
  Reset(static_cast<VectorCodecKind>(kind), expected_dim);
  const std::size_t elems = expected_n * expected_dim;
  switch (kind_) {
    case VectorCodecKind::kFp32:
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &fp32_));
      if (fp32_.size() != elems) {
        return Status::InvalidArgument("codec load: fp32 size mismatch");
      }
      break;
    case VectorCodecKind::kFp16:
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &fp16_));
      if (fp16_.size() != elems) {
        return Status::InvalidArgument("codec load: fp16 size mismatch");
      }
      break;
    case VectorCodecKind::kInt8:
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &int8_));
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &scale_));
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &offset_));
      if (int8_.size() != elems || scale_.size() != expected_n ||
          offset_.size() != expected_n) {
        return Status::InvalidArgument("codec load: int8 size mismatch");
      }
      break;
  }
  n_ = expected_n;
  return Status::OK();
}

}  // namespace cre
