#ifndef CRE_VECSIM_IVFPQ_INDEX_H_
#define CRE_VECSIM_IVFPQ_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/cancel.h"
#include "vecsim/kernels.h"
#include "vecsim/vector_index.h"

namespace cre {

/// IVF-PQ index (Jegou et al., "Product Quantization for Nearest
/// Neighbor Search"): a coarse k-means quantizer partitions the base set
/// into inverted lists, and each vector's *residual* (vector minus its
/// coarse centroid) is product-quantized — split into `pq_m` subspaces,
/// each encoded as one byte naming the nearest of 256 per-subspace
/// centroids. A vector costs pq_m bytes plus a list id instead of
/// 4*dim bytes, an order-of-magnitude footprint reduction.
///
/// Queries scan the nprobe nearest lists with asymmetric distance
/// computation (ADC): per probed list, a lookup table
/// lut[s][j] = dot(query_s, codebook[s][j]) turns each stored code into
/// score = dot(query, centroid) + sum_s lut[s][code[s]] — pq_m table
/// loads per vector, no decode. The top rescore_factor * k ADC
/// candidates are re-ranked by exact reconstruction
/// (centroid + decoded residual), repairing ordering errors inside the
/// top-k band.
struct IvfPqOptions {
  /// Coarse quantizer (same role as IvfOptions).
  std::size_t num_centroids = 32;
  std::size_t nprobe = 8;
  std::size_t kmeans_iters = 10;
  /// Product quantizer: pq_m subspaces of dim/pq_m components each (dim
  /// must be divisible by pq_m; Build rejects otherwise), 256 centroids
  /// per subspace trained with pq_kmeans_iters Lloyd iterations over the
  /// residuals.
  std::size_t pq_m = 8;
  std::size_t pq_kmeans_iters = 8;
  /// ADC over-fetch multiplier for the exact-reconstruction re-rank.
  std::size_t rescore_factor = 4;
  std::uint64_t seed = 17;
  /// Cooperative cancellation, polled between k-means iterations during
  /// Build and every few rows inside the ADC scans. Partial results must
  /// be discarded by the flag's owner (see IvfOptions). Not serialized.
  const CancelFlag* cancel = nullptr;
};

class IvfPqIndex : public VectorIndex {
 public:
  explicit IvfPqIndex(IvfPqOptions options = {}) : options_(options) {}

  Status Build(const float* data, std::size_t n, std::size_t dim) override;
  /// Incremental append with frozen quantizers: each new vector joins
  /// the list of its nearest coarse centroid and its residual is encoded
  /// against the trained codebooks (standard PQ maintenance — heavy
  /// distribution drift eventually warrants a rebuild/retrain).
  Status Add(const float* data, std::size_t n, std::size_t dim) override;
  std::unique_ptr<VectorIndex> Clone() const override {
    return std::make_unique<IvfPqIndex>(*this);
  }
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;
  void RangeSearch(const float* query, float threshold,
                   std::vector<ScoredId>* out) const override;
  std::vector<ScoredId> TopK(const float* query, std::size_t k) const override;

  std::size_t size() const override { return n_; }
  std::size_t dim() const override { return dim_; }
  std::string name() const override { return "ivfpq"; }
  std::size_t MemoryBytes() const override;

  std::size_t num_centroids() const { return centroid_count_; }
  std::size_t pq_m() const { return options_.pq_m; }

  /// Reconstructs vector `id` (coarse centroid + decoded residual) into
  /// out[0..dim). This is the best approximation the index can produce —
  /// the original fp32 rows are not retained.
  void Reconstruct(std::uint32_t id, float* out) const;

 private:
  /// Indices of the nprobe nearest coarse centroids to `query`.
  std::vector<std::uint32_t> NearestCentroids(const float* query,
                                              std::size_t nprobe) const;
  /// Fills the per-query ADC table: lut[s*256 + j] = dot(query_s,
  /// codebook[s][j]). One table serves every probed list because the
  /// codebooks quantize residuals globally.
  void BuildLut(const float* query, std::vector<float>* lut) const;
  /// PQ-encodes `v` minus centroid `c` into code[0..pq_m).
  void EncodeResidual(const float* v, std::uint32_t c,
                      std::uint8_t* code) const;
  /// ADC scan of the probed lists; emits (id, approx score) via `emit`.
  /// Returns false if cancelled mid-scan.
  template <typename Emit>
  bool ScanLists(const float* query, const std::vector<std::uint32_t>& probes,
                 const std::vector<float>& lut, Emit&& emit) const;

  std::size_t SubDim() const { return dim_ / options_.pq_m; }

  IvfPqOptions options_;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::size_t centroid_count_ = 0;
  /// Coarse centroids, [centroid_count_][dim] flattened.
  std::vector<float> centroids_;
  /// PQ codebooks over residuals, [pq_m][256][SubDim()] flattened.
  std::vector<float> codebooks_;
  /// Per-vector PQ codes, [n][pq_m] flattened (id-indexed).
  std::vector<std::uint8_t> codes_;
  /// Per-vector coarse assignment (id-indexed) — needed to reconstruct.
  std::vector<std::uint32_t> assign_;
  std::vector<std::vector<std::uint32_t>> lists_;
};

}  // namespace cre

#endif  // CRE_VECSIM_IVFPQ_INDEX_H_
