#include "vecsim/lsh_index.h"

#include <algorithm>

#include "core/rng.h"
#include "vecsim/top_k.h"

namespace cre {

Status LshIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (options_.bits_per_table > 31) {
    return Status::InvalidArgument("bits_per_table must be <= 31");
  }
  n_ = n;
  dim_ = dim;
  data_.assign(data, data + n * dim);

  // Draw Gaussian hyperplanes deterministically.
  Rng rng(options_.seed);
  const std::size_t total_planes =
      options_.num_tables * options_.bits_per_table;
  planes_.resize(total_planes * dim);
  for (auto& x : planes_) {
    x = static_cast<float>(rng.NextGaussian());
  }

  tables_.assign(options_.num_tables, {});
  for (std::size_t t = 0; t < options_.num_tables; ++t) {
    auto& table = tables_[t];
    table.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
      table[Signature(t, data + i * dim)].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  return Status::OK();
}

std::uint32_t LshIndex::Signature(std::size_t table, const float* v) const {
  std::uint32_t sig = 0;
  const std::size_t base = table * options_.bits_per_table;
  for (std::size_t b = 0; b < options_.bits_per_table; ++b) {
    const float* plane = planes_.data() + (base + b) * dim_;
    if (DotUnrolled(plane, v, dim_) >= 0.f) sig |= (1u << b);
  }
  return sig;
}

void LshIndex::CollectCandidates(const float* query,
                                 std::vector<std::uint32_t>* cand) const {
  for (std::size_t t = 0; t < options_.num_tables; ++t) {
    const std::uint32_t sig = Signature(t, query);
    auto probe = [&](std::uint32_t s) {
      auto it = tables_[t].find(s);
      if (it != tables_[t].end()) {
        cand->insert(cand->end(), it->second.begin(), it->second.end());
      }
    };
    probe(sig);
    if (options_.multiprobe) {
      for (std::size_t b = 0; b < options_.bits_per_table; ++b) {
        probe(sig ^ (1u << b));
      }
    }
  }
  // Dedup candidates.
  std::sort(cand->begin(), cand->end());
  cand->erase(std::unique(cand->begin(), cand->end()), cand->end());
}

void LshIndex::RangeSearch(const float* query, float threshold,
                           std::vector<ScoredId>* out) const {
  std::vector<std::uint32_t> cand;
  CollectCandidates(query, &cand);
  last_scan_fraction_ =
      n_ == 0 ? 0.0 : static_cast<double>(cand.size()) / static_cast<double>(n_);
  const DotFn dot = GetDotKernel(BestKernelVariant());
  for (const std::uint32_t id : cand) {
    const float s = dot(query, data_.data() + id * dim_, dim_);
    if (s >= threshold) out->push_back({id, s});
  }
}

std::vector<ScoredId> LshIndex::TopK(const float* query, std::size_t k) const {
  std::vector<std::uint32_t> cand;
  CollectCandidates(query, &cand);
  const DotFn dot = GetDotKernel(BestKernelVariant());
  TopKCollector collector(k);
  for (const std::uint32_t id : cand) {
    collector.Offer(id, dot(query, data_.data() + id * dim_, dim_));
  }
  return collector.TakeSorted();
}

std::size_t LshIndex::MemoryBytes() const {
  std::size_t bytes = data_.size() * sizeof(float) +
                      planes_.size() * sizeof(float);
  for (const auto& t : tables_) {
    bytes += t.size() * (sizeof(std::uint32_t) + sizeof(void*));
    for (const auto& [sig, ids] : t) {
      bytes += ids.size() * sizeof(std::uint32_t);
    }
  }
  return bytes;
}

}  // namespace cre
