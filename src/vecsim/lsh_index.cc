#include "vecsim/lsh_index.h"

#include <algorithm>
#include <utility>

#include "core/rng.h"
#include "vecsim/index_io.h"
#include "vecsim/top_k.h"

namespace cre {

Status LshIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (options_.bits_per_table > 31) {
    return Status::InvalidArgument("bits_per_table must be <= 31");
  }
  n_ = n;
  dim_ = dim;
  data_.assign(data, data + n * dim);

  // Draw Gaussian hyperplanes deterministically.
  Rng rng(options_.seed);
  const std::size_t total_planes =
      options_.num_tables * options_.bits_per_table;
  planes_.resize(total_planes * dim);
  for (auto& x : planes_) {
    x = static_cast<float>(rng.NextGaussian());
  }

  tables_.assign(options_.num_tables, {});
  for (std::size_t t = 0; t < options_.num_tables; ++t) {
    auto& table = tables_[t];
    table.reserve(n * 2);
    for (std::size_t i = 0; i < n; ++i) {
      table[Signature(t, data + i * dim)].push_back(
          static_cast<std::uint32_t>(i));
    }
  }
  return Status::OK();
}

Status LshIndex::Add(const float* data, std::size_t n, std::size_t dim) {
  if (dim_ == 0) return Build(data, n, dim);
  if (dim != dim_) return Status::InvalidArgument("lsh Add: dim mismatch");
  // Ids ascend, so appending hashes in id order leaves every bucket's
  // vector exactly as a fresh build over the concatenated data would.
  data_.insert(data_.end(), data, data + n * dim);
  for (std::size_t t = 0; t < options_.num_tables; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      tables_[t][Signature(t, data + i * dim)].push_back(
          static_cast<std::uint32_t>(n_ + i));
    }
  }
  n_ += n;
  return Status::OK();
}

namespace {
constexpr std::uint32_t kLshMagic = 0x434C5348;  // "CLSH"
constexpr std::uint32_t kLshVersion = 1;
}  // namespace

Status LshIndex::Save(std::ostream& out) const {
  CRE_RETURN_NOT_OK(vecio::WriteTag(out, kLshMagic, kLshVersion));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.num_tables));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.bits_per_table));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.seed));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint8_t>(out, options_.multiprobe ? 1 : 0));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, n_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, dim_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, data_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, planes_));
  // Buckets in sorted-signature order so the byte image is deterministic
  // (bucket *contents* determine search results; map order does not).
  for (const auto& table : tables_) {
    std::vector<std::pair<std::uint32_t, const std::vector<std::uint32_t>*>>
        buckets;
    buckets.reserve(table.size());
    for (const auto& [sig, ids] : table) buckets.push_back({sig, &ids});
    std::sort(buckets.begin(), buckets.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, buckets.size()));
    for (const auto& [sig, ids] : buckets) {
      CRE_RETURN_NOT_OK(vecio::WritePod(out, sig));
      CRE_RETURN_NOT_OK(vecio::WriteVec(out, *ids));
    }
  }
  return Status::OK();
}

Status LshIndex::Load(std::istream& in) {
  CRE_RETURN_NOT_OK(vecio::ExpectTag(in, kLshMagic, kLshVersion, "lsh"));
  std::uint64_t num_tables = 0, bits = 0, seed = 0, n = 0, dim = 0;
  std::uint8_t multiprobe = 0;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &num_tables));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &bits));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &seed));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &multiprobe));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &n));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &dim));
  // Bounds before any multiplication: caps keep num_tables*bits*dim and
  // n*dim far from uint64 wraparound.
  if (num_tables == 0 || num_tables > 1024 || bits > 31 || dim == 0 ||
      dim > vecio::kMaxDim || n > vecio::kMaxArrayElems) {
    return Status::InvalidArgument("lsh load: implausible options");
  }
  // Restore build-structural options only (tables/bits shape the stored
  // signatures); multiprobe is a query-time recall knob that must follow
  // this instance's configuration, not the save-time value.
  (void)multiprobe;
  options_.num_tables = static_cast<std::size_t>(num_tables);
  options_.bits_per_table = static_cast<std::size_t>(bits);
  options_.seed = seed;
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &data_));
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &planes_));
  if (data_.size() != n * dim ||
      planes_.size() != num_tables * bits * dim) {
    return Status::InvalidArgument("lsh load: inconsistent sizes");
  }
  tables_.assign(options_.num_tables, {});
  for (auto& table : tables_) {
    std::uint64_t buckets = 0;
    CRE_RETURN_NOT_OK(vecio::ReadPod(in, &buckets));
    if (buckets > n) {
      return Status::InvalidArgument("lsh load: implausible bucket count");
    }
    table.reserve(static_cast<std::size_t>(buckets) * 2);
    for (std::uint64_t b = 0; b < buckets; ++b) {
      std::uint32_t sig = 0;
      CRE_RETURN_NOT_OK(vecio::ReadPod(in, &sig));
      std::vector<std::uint32_t> ids;
      CRE_RETURN_NOT_OK(vecio::ReadVec(in, &ids));
      for (const std::uint32_t id : ids) {
        if (id >= n) {
          return Status::InvalidArgument("lsh load: id out of range");
        }
      }
      table.emplace(sig, std::move(ids));
    }
  }
  n_ = static_cast<std::size_t>(n);
  dim_ = static_cast<std::size_t>(dim);
  return Status::OK();
}

std::uint32_t LshIndex::Signature(std::size_t table, const float* v) const {
  std::uint32_t sig = 0;
  const std::size_t base = table * options_.bits_per_table;
  for (std::size_t b = 0; b < options_.bits_per_table; ++b) {
    const float* plane = planes_.data() + (base + b) * dim_;
    if (DotUnrolled(plane, v, dim_) >= 0.f) sig |= (1u << b);
  }
  return sig;
}

void LshIndex::CollectCandidates(const float* query,
                                 std::vector<std::uint32_t>* cand) const {
  for (std::size_t t = 0; t < options_.num_tables; ++t) {
    const std::uint32_t sig = Signature(t, query);
    auto probe = [&](std::uint32_t s) {
      auto it = tables_[t].find(s);
      if (it != tables_[t].end()) {
        cand->insert(cand->end(), it->second.begin(), it->second.end());
      }
    };
    probe(sig);
    if (options_.multiprobe) {
      for (std::size_t b = 0; b < options_.bits_per_table; ++b) {
        probe(sig ^ (1u << b));
      }
    }
  }
  // Dedup candidates.
  std::sort(cand->begin(), cand->end());
  cand->erase(std::unique(cand->begin(), cand->end()), cand->end());
}

namespace {
/// Candidates verified per batch-gather kernel call; also the poll
/// granularity for cooperative cancellation, so a cancelled query stops
/// within one block instead of verifying the whole multiprobe set.
constexpr std::size_t kVerifyBlock = 64;
}  // namespace

void LshIndex::RangeSearch(const float* query, float threshold,
                           std::vector<ScoredId>* out) const {
  std::vector<std::uint32_t> cand;
  CollectCandidates(query, &cand);
  last_scan_fraction_ =
      n_ == 0 ? 0.0 : static_cast<double>(cand.size()) / static_cast<double>(n_);
  // The deduped candidate list verifies through the batch-gather kernel:
  // one call per block, software prefetch hiding the scattered row loads.
  const DotBatchGatherFn dot_gather =
      GetDotBatchGatherKernel(BestKernelVariant());
  float scores[kVerifyBlock];
  for (std::size_t i0 = 0; i0 < cand.size(); i0 += kVerifyBlock) {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) return;
    const std::size_t count = std::min(kVerifyBlock, cand.size() - i0);
    dot_gather(query, data_.data(), cand.data() + i0, count, dim_, scores);
    for (std::size_t i = 0; i < count; ++i) {
      if (scores[i] >= threshold) out->push_back({cand[i0 + i], scores[i]});
    }
  }
}

std::vector<ScoredId> LshIndex::TopK(const float* query, std::size_t k) const {
  std::vector<std::uint32_t> cand;
  CollectCandidates(query, &cand);
  const DotBatchGatherFn dot_gather =
      GetDotBatchGatherKernel(BestKernelVariant());
  TopKCollector collector(k);
  float scores[kVerifyBlock];
  for (std::size_t i0 = 0; i0 < cand.size(); i0 += kVerifyBlock) {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return collector.TakeSorted();
    }
    const std::size_t count = std::min(kVerifyBlock, cand.size() - i0);
    dot_gather(query, data_.data(), cand.data() + i0, count, dim_, scores);
    for (std::size_t i = 0; i < count; ++i) {
      collector.Offer(cand[i0 + i], scores[i]);
    }
  }
  return collector.TakeSorted();
}

std::size_t LshIndex::MemoryBytes() const {
  std::size_t bytes = data_.size() * sizeof(float) +
                      planes_.size() * sizeof(float);
  for (const auto& t : tables_) {
    bytes += t.size() * (sizeof(std::uint32_t) + sizeof(void*));
    for (const auto& [sig, ids] : t) {
      bytes += ids.size() * sizeof(std::uint32_t);
    }
  }
  return bytes;
}

}  // namespace cre
