#include "vecsim/ivfpq_index.h"

#include <algorithm>
#include <limits>

#include "core/rng.h"
#include "vecsim/index_io.h"
#include "vecsim/top_k.h"

namespace cre {

namespace {

/// PQ codebook size per subspace: one byte per code, so 256 centroids —
/// the standard choice (Jegou et al. Sec. V) and the one that makes ADC
/// tables exactly 1 KiB per subspace.
constexpr std::size_t kPqK = 256;

/// Rows scored per cancellation poll in the ADC scans.
constexpr std::size_t kScanPollStride = 64;

bool Cancelled(const CancelFlag* cancel) {
  return cancel != nullptr && cancel->cancelled();
}

/// Lloyd k-means over `n` points of dimension `d` (row-major in `pts`),
/// maximizing dot against points that are NOT unit vectors (residuals),
/// so the assignment minimizes L2 explicitly. Centroids are seeded from
/// the points (cycling when n < k) and empty clusters keep their old
/// centroid. Deterministic for a fixed rng state.
void KMeansL2(const float* pts, std::size_t n, std::size_t d, std::size_t k,
              std::size_t iters, Rng* rng, std::vector<float>* centroids) {
  centroids->resize(k * d);
  // Seed with a random permutation prefix; when n < k, cycle so every
  // codeword is at least a valid point (duplicates split via updates).
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::swap(perm[i], perm[i + rng->Uniform(n - i)]);
  }
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t src = perm[c % n];
    std::copy(pts + src * d, pts + (src + 1) * d,
              centroids->begin() + c * d);
  }

  std::vector<std::uint32_t> assign(n, 0);
  std::vector<float> sums(k * d);
  std::vector<std::size_t> counts(k);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = pts + i * d;
      float best = std::numeric_limits<float>::max();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const float* ctr = centroids->data() + c * d;
        float dist = 0.f;
        for (std::size_t j = 0; j < d; ++j) {
          const float diff = v[j] - ctr[j];
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      assign[i] = best_c;
    }
    std::fill(sums.begin(), sums.end(), 0.f);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = pts + i * d;
      float* s = sums.data() + assign[i] * d;
      for (std::size_t j = 0; j < d; ++j) s[j] += v[j];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      float* ctr = centroids->data() + c * d;
      const float inv = 1.f / static_cast<float>(counts[c]);
      for (std::size_t j = 0; j < d; ++j) ctr[j] = sums[c * d + j] * inv;
    }
  }
}

}  // namespace

Status IvfPqIndex::Build(const float* data, std::size_t n, std::size_t dim) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (options_.pq_m == 0 || dim % options_.pq_m != 0) {
    return Status::InvalidArgument(
        "ivfpq: dim must be divisible by pq_m (pq_m >= 1)");
  }
  n_ = n;
  dim_ = dim;
  centroid_count_ =
      std::min(options_.num_centroids, std::max<std::size_t>(n, 1));
  codes_.clear();
  assign_.clear();
  if (n == 0) {
    lists_.clear();
    centroids_.clear();
    codebooks_.clear();
    return Status::OK();
  }

  // --- Coarse quantizer: same simplified k-means as IVF-Flat (random
  // distinct seeding, dot-ordering assignment on unit vectors,
  // normalized centroid updates). ---
  Rng rng(options_.seed);
  centroids_.resize(centroid_count_ * dim);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = 0; i < centroid_count_; ++i) {
    std::swap(perm[i], perm[i + rng.Uniform(n - i)]);
    std::copy(data + perm[i] * dim, data + (perm[i] + 1) * dim,
              centroids_.begin() + i * dim);
  }
  assign_.assign(n, 0);
  std::vector<float> sums(centroid_count_ * dim);
  std::vector<std::size_t> counts(centroid_count_);
  for (std::size_t iter = 0; iter < options_.kmeans_iters; ++iter) {
    if (Cancelled(options_.cancel)) {
      return Status::Cancelled("ivfpq build cancelled");
    }
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      float best = -std::numeric_limits<float>::max();
      std::uint32_t best_c = 0;
      for (std::size_t c = 0; c < centroid_count_; ++c) {
        const float s = DotUnrolled(v, centroids_.data() + c * dim, dim);
        if (s > best) {
          best = s;
          best_c = static_cast<std::uint32_t>(c);
        }
      }
      assign_[i] = best_c;
    }
    std::fill(sums.begin(), sums.end(), 0.f);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const float* v = data + i * dim;
      float* s = sums.data() + assign_[i] * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += v[d];
      ++counts[assign_[i]];
    }
    for (std::size_t c = 0; c < centroid_count_; ++c) {
      if (counts[c] == 0) continue;
      float* ctr = centroids_.data() + c * dim;
      const float inv = 1.f / static_cast<float>(counts[c]);
      for (std::size_t d = 0; d < dim; ++d) ctr[d] = sums[c * dim + d] * inv;
      NormalizeInPlace(ctr, dim);
    }
  }

  // --- Residuals: what the PQ has to represent. Quantizing residuals
  // instead of raw vectors is the "IVFADC" variant — residual energy is
  // much smaller than vector energy, so the same code budget yields a
  // far finer quantizer. ---
  std::vector<float> residuals(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    const float* v = data + i * dim;
    const float* ctr = centroids_.data() + assign_[i] * dim;
    float* r = residuals.data() + i * dim;
    for (std::size_t d = 0; d < dim; ++d) r[d] = v[d] - ctr[d];
  }

  // --- Product codebooks: an independent 256-way k-means per subspace
  // over the residual slices (global across lists — one ADC table per
  // query serves every probed list). ---
  const std::size_t sub = SubDim();
  codebooks_.assign(options_.pq_m * kPqK * sub, 0.f);
  std::vector<float> slice(n * sub);
  std::vector<float> book;
  for (std::size_t s = 0; s < options_.pq_m; ++s) {
    if (Cancelled(options_.cancel)) {
      return Status::Cancelled("ivfpq build cancelled");
    }
    for (std::size_t i = 0; i < n; ++i) {
      std::copy(residuals.begin() + i * dim + s * sub,
                residuals.begin() + i * dim + (s + 1) * sub,
                slice.begin() + i * sub);
    }
    KMeansL2(slice.data(), n, sub, kPqK, options_.pq_kmeans_iters, &rng,
             &book);
    std::copy(book.begin(), book.end(),
              codebooks_.begin() + s * kPqK * sub);
  }

  // --- Encode every residual and fill the inverted lists. ---
  codes_.resize(n * options_.pq_m);
  lists_.assign(centroid_count_, {});
  for (std::size_t i = 0; i < n; ++i) {
    EncodeResidual(data + i * dim, assign_[i],
                   codes_.data() + i * options_.pq_m);
    lists_[assign_[i]].push_back(static_cast<std::uint32_t>(i));
  }
  return Status::OK();
}

void IvfPqIndex::EncodeResidual(const float* v, std::uint32_t c,
                                std::uint8_t* code) const {
  const std::size_t sub = SubDim();
  const float* ctr = centroids_.data() + static_cast<std::size_t>(c) * dim_;
  for (std::size_t s = 0; s < options_.pq_m; ++s) {
    const float* book = codebooks_.data() + s * kPqK * sub;
    float best = std::numeric_limits<float>::max();
    std::uint8_t best_j = 0;
    for (std::size_t j = 0; j < kPqK; ++j) {
      const float* word = book + j * sub;
      float dist = 0.f;
      for (std::size_t d = 0; d < sub; ++d) {
        const float r = v[s * sub + d] - ctr[s * sub + d];
        const float diff = r - word[d];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_j = static_cast<std::uint8_t>(j);
      }
    }
    code[s] = best_j;
  }
}

Status IvfPqIndex::Add(const float* data, std::size_t n, std::size_t dim) {
  if (n_ == 0) return Build(data, n, dim);  // no trained quantizers yet
  if (dim != dim_) return Status::InvalidArgument("ivfpq Add: dim mismatch");
  codes_.resize((n_ + n) * options_.pq_m);
  for (std::size_t i = 0; i < n; ++i) {
    const float* v = data + i * dim;
    float best = -std::numeric_limits<float>::max();
    std::uint32_t best_c = 0;
    for (std::size_t c = 0; c < centroid_count_; ++c) {
      const float s = DotUnrolled(v, centroids_.data() + c * dim, dim);
      if (s > best) {
        best = s;
        best_c = static_cast<std::uint32_t>(c);
      }
    }
    const std::uint32_t id = static_cast<std::uint32_t>(n_ + i);
    EncodeResidual(v, best_c, codes_.data() + id * options_.pq_m);
    assign_.push_back(best_c);
    lists_[best_c].push_back(id);
  }
  n_ += n;
  return Status::OK();
}

void IvfPqIndex::Reconstruct(std::uint32_t id, float* out) const {
  const std::size_t sub = SubDim();
  const float* ctr =
      centroids_.data() + static_cast<std::size_t>(assign_[id]) * dim_;
  const std::uint8_t* code = codes_.data() + id * options_.pq_m;
  for (std::size_t s = 0; s < options_.pq_m; ++s) {
    const float* word =
        codebooks_.data() + (s * kPqK + code[s]) * sub;
    for (std::size_t d = 0; d < sub; ++d) {
      out[s * sub + d] = ctr[s * sub + d] + word[d];
    }
  }
}

std::vector<std::uint32_t> IvfPqIndex::NearestCentroids(
    const float* query, std::size_t nprobe) const {
  TopKCollector collector(std::min(nprobe, centroid_count_));
  for (std::size_t c = 0; c < centroid_count_; ++c) {
    collector.Offer(static_cast<std::uint32_t>(c),
                    DotUnrolled(query, centroids_.data() + c * dim_, dim_));
  }
  std::vector<std::uint32_t> out;
  for (const auto& s : collector.TakeSorted()) out.push_back(s.id);
  return out;
}

void IvfPqIndex::BuildLut(const float* query, std::vector<float>* lut) const {
  const std::size_t sub = SubDim();
  lut->resize(options_.pq_m * kPqK);
  for (std::size_t s = 0; s < options_.pq_m; ++s) {
    const float* q = query + s * sub;
    const float* book = codebooks_.data() + s * kPqK * sub;
    float* t = lut->data() + s * kPqK;
    for (std::size_t j = 0; j < kPqK; ++j) {
      t[j] = DotUnrolled(q, book + j * sub, sub);
    }
  }
}

template <typename Emit>
bool IvfPqIndex::ScanLists(const float* query,
                           const std::vector<std::uint32_t>& probes,
                           const std::vector<float>& lut, Emit&& emit) const {
  const std::size_t m = options_.pq_m;
  for (const std::uint32_t c : probes) {
    // dot(q, reconstruction) = dot(q, centroid) + sum_s lut[s][code_s]:
    // the centroid term is shared by the whole list.
    const float base =
        DotUnrolled(query, centroids_.data() + c * dim_, dim_);
    const auto& list = lists_[c];
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (i % kScanPollStride == 0 && Cancelled(options_.cancel)) {
        return false;
      }
      const std::uint32_t id = list[i];
      const std::uint8_t* code = codes_.data() + id * m;
      float s = base;
      for (std::size_t sp = 0; sp < m; ++sp) {
        s += lut[sp * kPqK + code[sp]];
      }
      emit(id, s);
    }
  }
  return true;
}

std::vector<ScoredId> IvfPqIndex::TopK(const float* query,
                                       std::size_t k) const {
  TopKCollector adc(
      std::max(k, k * std::max<std::size_t>(options_.rescore_factor, 1)));
  if (n_ == 0 || k == 0) return {};
  std::vector<float> lut;
  BuildLut(query, &lut);
  ScanLists(query, NearestCentroids(query, options_.nprobe), lut,
            [&](std::uint32_t id, float s) { adc.Offer(id, s); });
  // Exact re-rank of the ADC band: recompute dot(q, reconstruction) in
  // straight fp32 (the ADC path accumulates per-subspace table entries,
  // whose rounding differs from a direct dot). The fetch band also
  // absorbs ADC ties that table rounding ordered arbitrarily.
  std::vector<float> rec(dim_);
  TopKCollector rescored(k);
  for (const auto& cand : adc.TakeSorted()) {
    Reconstruct(cand.id, rec.data());
    rescored.Offer(cand.id, DotUnrolled(query, rec.data(), dim_));
  }
  return rescored.TakeSorted();
}

void IvfPqIndex::RangeSearch(const float* query, float threshold,
                             std::vector<ScoredId>* out) const {
  if (n_ == 0) return;
  // Scores are exact dots against the *reconstructed* vectors — the
  // closest this index can get to the originals, which it does not
  // retain. Like LSH's false negatives, PQ's reconstruction error is the
  // accuracy the caller opted into by picking this family.
  std::vector<float> lut;
  BuildLut(query, &lut);
  ScanLists(query, NearestCentroids(query, options_.nprobe), lut,
            [&](std::uint32_t id, float s) {
              if (s >= threshold) out->push_back({id, s});
            });
}

namespace {
constexpr std::uint32_t kIvfPqMagic = 0x43505149;  // "CPQI"
constexpr std::uint32_t kIvfPqVersion = 1;
}  // namespace

Status IvfPqIndex::Save(std::ostream& out) const {
  CRE_RETURN_NOT_OK(vecio::WriteTag(out, kIvfPqMagic, kIvfPqVersion));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.num_centroids));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.nprobe));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.kmeans_iters));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.pq_m));
  CRE_RETURN_NOT_OK(
      vecio::WritePod<std::uint64_t>(out, options_.pq_kmeans_iters));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, options_.seed));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, n_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, dim_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, centroid_count_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, centroids_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, codebooks_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, codes_));
  CRE_RETURN_NOT_OK(vecio::WriteVec(out, assign_));
  CRE_RETURN_NOT_OK(vecio::WritePod<std::uint64_t>(out, lists_.size()));
  for (const auto& list : lists_) {
    CRE_RETURN_NOT_OK(vecio::WriteVec(out, list));
  }
  return Status::OK();
}

Status IvfPqIndex::Load(std::istream& in) {
  CRE_RETURN_NOT_OK(vecio::ExpectTag(in, kIvfPqMagic, kIvfPqVersion, "ivfpq"));
  std::uint64_t num_centroids = 0, nprobe = 0, iters = 0, pq_m = 0;
  std::uint64_t pq_iters = 0, seed = 0;
  std::uint64_t n = 0, dim = 0, centroid_count = 0, list_count = 0;
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &num_centroids));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &nprobe));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &iters));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &pq_m));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &pq_iters));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &seed));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &n));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &dim));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &centroid_count));
  // Bounds before any multiplication: the caps keep every product below
  // (n*dim, centroid_count*dim, pq_m*256*sub) far from uint64 wraparound,
  // and the divisibility check pins the subspace geometry every ADC loop
  // assumes.
  if (dim == 0 || dim > vecio::kMaxDim || n > vecio::kMaxArrayElems ||
      centroid_count > vecio::kMaxArrayElems || pq_m == 0 || pq_m > dim ||
      dim % pq_m != 0) {
    return Status::InvalidArgument("ivfpq load: implausible header");
  }
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &centroids_));
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &codebooks_));
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &codes_));
  CRE_RETURN_NOT_OK(vecio::ReadVec(in, &assign_));
  CRE_RETURN_NOT_OK(vecio::ReadPod(in, &list_count));
  const std::uint64_t sub = dim / pq_m;
  if (n == 0) {
    if (!centroids_.empty() || !codebooks_.empty() || !codes_.empty() ||
        !assign_.empty() || list_count != 0) {
      return Status::InvalidArgument("ivfpq load: inconsistent empty index");
    }
  } else if (centroids_.size() != centroid_count * dim ||
             codebooks_.size() != pq_m * kPqK * sub ||
             codes_.size() != n * pq_m || assign_.size() != n ||
             list_count != centroid_count) {
    return Status::InvalidArgument("ivfpq load: inconsistent sizes");
  }
  for (const std::uint32_t a : assign_) {
    if (a >= centroid_count) {
      return Status::InvalidArgument("ivfpq load: assignment out of range");
    }
  }
  lists_.assign(static_cast<std::size_t>(list_count), {});
  std::uint64_t total_ids = 0;
  for (auto& list : lists_) {
    CRE_RETURN_NOT_OK(vecio::ReadVec(in, &list));
    total_ids += list.size();
    for (const std::uint32_t id : list) {
      if (id >= n) {
        return Status::InvalidArgument("ivfpq load: id out of range");
      }
    }
  }
  if (total_ids != n) {
    return Status::InvalidArgument("ivfpq load: lists do not partition ids");
  }
  // Build-structural options restore from the image (they shape the
  // stored quantizers and keep future Adds/retrains deterministic);
  // nprobe and rescore_factor are query-time recall/latency knobs that
  // follow this instance's configuration.
  (void)nprobe;
  options_.num_centroids = static_cast<std::size_t>(num_centroids);
  options_.kmeans_iters = static_cast<std::size_t>(iters);
  options_.pq_m = static_cast<std::size_t>(pq_m);
  options_.pq_kmeans_iters = static_cast<std::size_t>(pq_iters);
  options_.seed = seed;
  n_ = static_cast<std::size_t>(n);
  dim_ = static_cast<std::size_t>(dim);
  centroid_count_ = static_cast<std::size_t>(centroid_count);
  return Status::OK();
}

std::size_t IvfPqIndex::MemoryBytes() const {
  std::size_t bytes = (centroids_.size() + codebooks_.size()) * sizeof(float) +
                      codes_.size() * sizeof(std::uint8_t) +
                      assign_.size() * sizeof(std::uint32_t);
  for (const auto& l : lists_) bytes += l.size() * sizeof(std::uint32_t);
  return bytes;
}

}  // namespace cre
