#ifndef CRE_VECSIM_LSH_INDEX_H_
#define CRE_VECSIM_LSH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/cancel.h"
#include "vecsim/kernels.h"
#include "vecsim/vector_index.h"

namespace cre {

/// Random-hyperplane LSH index for cosine similarity: `num_tables`
/// signatures of `bits_per_table` hyperplane sign bits each. Candidates
/// from matching buckets are verified with the exact kernel, so results
/// have no false positives — only (tunable) false negatives.
struct LshOptions {
  std::size_t num_tables = 8;
  std::size_t bits_per_table = 12;
  std::uint64_t seed = 7;
  /// Also probe buckets at Hamming distance 1 from the query signature.
  bool multiprobe = true;
  /// Cooperative cancellation, polled every few candidates inside the
  /// exact-verification loops of RangeSearch/TopK (the dominant cost —
  /// multiprobe candidate sets can approach a large fraction of the base
  /// set on hard data). A flipped flag makes a scan stop early and return
  /// a partial result; the caller (who owns the flag) must check it
  /// afterwards and discard the output, unwinding with
  /// Status::Cancelled. Not serialized.
  const CancelFlag* cancel = nullptr;
};

class LshIndex : public VectorIndex {
 public:
  explicit LshIndex(LshOptions options = {}) : options_(options) {}

  Status Build(const float* data, std::size_t n, std::size_t dim) override;
  /// Incremental append: new vectors hash into the existing tables (the
  /// hyperplanes are fixed at build time, so an appended index is
  /// identical to a fresh build over the concatenated data).
  Status Add(const float* data, std::size_t n, std::size_t dim) override;
  std::unique_ptr<VectorIndex> Clone() const override {
    return std::make_unique<LshIndex>(*this);
  }
  Status Save(std::ostream& out) const override;
  Status Load(std::istream& in) override;
  void RangeSearch(const float* query, float threshold,
                   std::vector<ScoredId>* out) const override;
  std::vector<ScoredId> TopK(const float* query, std::size_t k) const override;

  std::size_t size() const override { return n_; }
  std::size_t dim() const override { return dim_; }
  std::string name() const override { return "lsh"; }
  std::size_t MemoryBytes() const override;

  /// Fraction of base vectors examined by the last RangeSearch (for the
  /// optimizer's cost calibration). Approximate, not thread-safe.
  double last_scan_fraction() const { return last_scan_fraction_; }

 private:
  std::uint32_t Signature(std::size_t table, const float* v) const;
  void CollectCandidates(const float* query,
                         std::vector<std::uint32_t>* cand) const;

  LshOptions options_;
  std::size_t n_ = 0;
  std::size_t dim_ = 0;
  std::vector<float> data_;
  std::vector<float> planes_;  ///< [table][bit][dim] flattened
  std::vector<std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>>
      tables_;
  mutable double last_scan_fraction_ = 0;
};

}  // namespace cre

#endif  // CRE_VECSIM_LSH_INDEX_H_
