#include "vecsim/fp16.h"

#include <cstring>

namespace cre {

std::uint16_t FloatToHalf(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xff) - 127 + 15;
  std::uint32_t mant = x & 0x7fffffu;
  if (exp <= 0) {
    // Subnormal or zero in half precision.
    if (exp < -10) return static_cast<std::uint16_t>(sign);
    mant |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exp);
    return static_cast<std::uint16_t>(sign | (mant >> shift));
  }
  if (exp >= 0x1f) {
    // Input inf/NaN propagates (keep a NaN payload bit); finite values too
    // large for half overflow to a clean infinity.
    const bool input_is_nan = ((x >> 23) & 0xff) == 0xff && mant != 0;
    return static_cast<std::uint16_t>(sign | 0x7c00u |
                                      (input_is_nan ? 0x200u : 0));
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(exp) << 10) |
                                    (mant >> 13));
}

float HalfToFloat(std::uint16_t h) {
  const std::uint32_t sign = (h & 0x8000u) << 16;
  std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;
    } else {
      // Subnormal: renormalize.
      exp = 127 - 15 + 1;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        --exp;
      }
      mant &= 0x3ffu;
      x = sign | (exp << 23) | (mant << 13);
    }
  } else if (exp == 0x1f) {
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

void FloatsToHalves(const float* in, std::uint16_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = FloatToHalf(in[i]);
}

void HalvesToFloats(const std::uint16_t* in, float* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = HalfToFloat(in[i]);
}

}  // namespace cre
