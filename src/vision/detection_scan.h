#ifndef CRE_VISION_DETECTION_SCAN_H_
#define CRE_VISION_DETECTION_SCAN_H_

#include <map>
#include <memory>
#include <string>

#include "core/cancel.h"
#include "core/result.h"
#include "core/thread_pool.h"
#include "exec/operator.h"
#include "expr/expr.h"
#include "vision/image_store.h"
#include "vision/object_detector.h"

namespace cre {

/// Physical operator running the (expensive, simulated) object detector
/// over an image store. A pushed-down predicate is split by column: terms
/// over {image_id, date_taken} are applied BEFORE inference on the cheap
/// metadata view — the optimization the Fig. 2 query hinges on; without
/// it every image is processed ("heavy processing on all the corpora").
/// Terms over detection outputs (object_label, confidence,
/// objects_in_image) are applied after inference per batch.
///
/// With a thread pool, each batch's inference fans out over the workers
/// (detection is embarrassingly parallel per image) with per-shard result
/// tables concatenated in image order, so output order stays identical to
/// the serial scan. Next() must be called from outside the pool's own
/// workers (the engine always materializes detect scans on the driver
/// thread).
class DetectionScanOperator : public PhysicalOperator {
 public:
  /// `cancel` (optional) is polled between batches and between images
  /// inside each inference shard, so a cancel or deadline expiry stops a
  /// detect scan without waiting out the whole 256-image batch.
  DetectionScanOperator(const ImageStore* store, const ObjectDetector* detector,
                        ExprPtr predicate = nullptr,
                        std::size_t images_per_batch = 256,
                        TaskRunner* pool = nullptr,
                        const CancelFlag* cancel = nullptr);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Result<TablePtr> Next() override;
  std::string name() const override {
    return predicate_ ? "DetectScan(pushed: " + predicate_->ToString() + ")"
                      : "DetectScan";
  }

 private:
  const ImageStore* store_;
  const ObjectDetector* detector_;
  TaskRunner* pool_;
  const CancelFlag* cancel_;
  ExprPtr predicate_;
  ExprPtr metadata_predicate_;  ///< pre-inference terms (split at Open)
  ExprPtr post_predicate_;      ///< post-inference terms
  std::size_t images_per_batch_;
  Schema schema_;
  std::vector<std::uint32_t> qualifying_;
  std::size_t offset_ = 0;
};

/// Named registration of an image store + detector pair, resolvable from
/// logical DetectScan nodes.
struct DetectorBinding {
  const ImageStore* store = nullptr;
  const ObjectDetector* detector = nullptr;
};

class DetectorRegistry {
 public:
  void Put(const std::string& name, DetectorBinding binding) {
    bindings_[name] = binding;
  }
  Result<DetectorBinding> Get(const std::string& name) const {
    auto it = bindings_.find(name);
    if (it == bindings_.end()) {
      return Status::NotFound("detector binding '" + name + "' not found");
    }
    return it->second;
  }
  bool Contains(const std::string& name) const {
    return bindings_.count(name) > 0;
  }

 private:
  std::map<std::string, DetectorBinding> bindings_;
};

}  // namespace cre

#endif  // CRE_VISION_DETECTION_SCAN_H_
