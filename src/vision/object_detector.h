#ifndef CRE_VISION_OBJECT_DETECTOR_H_
#define CRE_VISION_OBJECT_DETECTOR_H_

#include <atomic>
#include <cstdint>

#include "storage/table.h"
#include "vision/image_store.h"

namespace cre {

/// Simulated object-detection model. Produces the image's ground-truth
/// object set with calibrated per-image inference cost (a deterministic
/// arithmetic spin, so wall-clock scales with images processed like a real
/// CNN would) and a deterministic confidence score. The substitution for
/// the paper's CNN — see DESIGN.md.
class ObjectDetector {
 public:
  struct Options {
    /// Simulated inference cost per image, in microseconds of compute.
    double cost_per_image_us = 30.0;
    std::uint64_t seed = 77;
  };

  ObjectDetector() = default;
  explicit ObjectDetector(Options options) : options_(options) {}

  /// Runs "inference" on one image; appends one row per detected object to
  /// `out` with schema {image_id, object_label, confidence,
  /// objects_in_image}.
  void DetectInto(const SyntheticImage& image, Table* out) const;

  /// Detection output schema.
  static Schema DetectionSchema();

  /// Detects over all (or a subset of) store images.
  TablePtr DetectAll(const ImageStore& store,
                     const std::vector<std::uint32_t>* subset = nullptr) const;

  /// Number of images processed since construction — benches use this to
  /// verify that pushdown actually reduced inference work.
  std::size_t images_processed() const {
    return images_processed_.load(std::memory_order_relaxed);
  }
  void ResetCounter() {
    images_processed_.store(0, std::memory_order_relaxed);
  }

  double cost_per_image_us() const { return options_.cost_per_image_us; }

 private:
  void SimulateInferenceCompute() const;

  Options options_;
  mutable std::atomic<std::size_t> images_processed_{0};
};

}  // namespace cre

#endif  // CRE_VISION_OBJECT_DETECTOR_H_
