#include "vision/image_store.h"

namespace cre {

TablePtr ImageStore::MetadataTable() const {
  auto table = Table::Make(Schema({{"image_id", DataType::kInt64, 0},
                                   {"date_taken", DataType::kDate, 0}}));
  table->Reserve(images_.size());
  for (const auto& img : images_) {
    table->column(0).AppendInt64(img.image_id);
    table->column(1).AppendInt64(img.date_taken);
  }
  return table;
}

}  // namespace cre
