#include "vision/detection_scan.h"

#include <numeric>
#include <set>

#include "expr/evaluator.h"

namespace cre {

DetectionScanOperator::DetectionScanOperator(const ImageStore* store,
                                             const ObjectDetector* detector,
                                             ExprPtr predicate,
                                             std::size_t images_per_batch,
                                             TaskRunner* pool,
                                             const CancelFlag* cancel)
    : store_(store),
      detector_(detector),
      pool_(pool),
      cancel_(cancel),
      predicate_(std::move(predicate)),
      images_per_batch_(images_per_batch),
      schema_(ObjectDetector::DetectionSchema()) {}

Status DetectionScanOperator::Open() {
  offset_ = 0;
  qualifying_.clear();
  metadata_predicate_ = nullptr;
  post_predicate_ = nullptr;

  if (predicate_ != nullptr) {
    // Split by column: metadata terms run before inference, the rest after.
    const std::set<std::string> metadata_cols = {"image_id", "date_taken"};
    std::vector<ExprPtr> meta_terms, post_terms;
    for (const auto& term : SplitConjunction(predicate_)) {
      (term->OnlyReferences(metadata_cols) ? meta_terms : post_terms)
          .push_back(term);
    }
    metadata_predicate_ = CombineConjunction(meta_terms);
    post_predicate_ = CombineConjunction(post_terms);
  }

  if (metadata_predicate_ == nullptr) {
    qualifying_.resize(store_->size());
    std::iota(qualifying_.begin(), qualifying_.end(), 0);
    return Status::OK();
  }
  TablePtr meta = store_->MetadataTable();
  CRE_ASSIGN_OR_RETURN(qualifying_,
                       FilterIndices(*meta, *metadata_predicate_));
  return Status::OK();
}

Result<TablePtr> DetectionScanOperator::Next() {
  for (;;) {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::Cancelled("detect scan cancelled");
    }
    if (offset_ >= qualifying_.size()) return TablePtr(nullptr);
    const std::size_t end =
        std::min(qualifying_.size(), offset_ + images_per_batch_);
    auto out = Table::Make(schema_);
    const std::size_t count = end - offset_;
    if (pool_ != nullptr && pool_->num_threads() > 1 && count >= 8) {
      // Fan inference out over the workers; shards concatenate in image
      // order so the output matches the serial scan row for row.
      const std::size_t shards = std::min(count, pool_->num_threads() * 2);
      const std::size_t per = (count + shards - 1) / shards;
      std::vector<TablePtr> parts((count + per - 1) / per);
      for (std::size_t p = 0; p < parts.size(); ++p) {
        const std::size_t begin = offset_ + p * per;
        const std::size_t stop = std::min(end, begin + per);
        pool_->Submit([this, p, begin, stop, &parts] {
          auto shard = Table::Make(schema_);
          for (std::size_t i = begin; i < stop; ++i) {
            // Inference dominates per-image cost, so stop between images
            // rather than waiting out the shard; partial shards are
            // discarded with the cancelled status below.
            if (cancel_ != nullptr && cancel_->cancelled()) break;
            detector_->DetectInto(store_->image(qualifying_[i]),
                                  shard.get());
          }
          parts[p] = std::move(shard);
        });
      }
      pool_->Wait();
      if (cancel_ != nullptr && cancel_->cancelled()) {
        return Status::Cancelled("detect scan cancelled");
      }
      for (const auto& part : parts) {
        CRE_RETURN_NOT_OK(out->AppendTable(*part));
      }
    } else {
      for (std::size_t i = offset_; i < end; ++i) {
        if (cancel_ != nullptr && cancel_->cancelled()) {
          return Status::Cancelled("detect scan cancelled");
        }
        detector_->DetectInto(store_->image(qualifying_[i]), out.get());
      }
    }
    offset_ = end;
    if (post_predicate_ != nullptr) {
      CRE_ASSIGN_OR_RETURN(auto keep, FilterIndices(*out, *post_predicate_));
      if (keep.empty()) continue;
      if (keep.size() != out->num_rows()) return out->Take(keep);
    }
    return out;
  }
}

}  // namespace cre
