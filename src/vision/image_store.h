#ifndef CRE_VISION_IMAGE_STORE_H_
#define CRE_VISION_IMAGE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace cre {

/// A synthetic image: metadata plus a hidden ground-truth object set.
/// Stands in for pixel data — the engine only ever observes objects
/// through the (costed) ObjectDetector, so the orchestration problem the
/// paper poses (push cheap metadata filters below expensive inference) is
/// preserved (see DESIGN.md substitutions).
struct SyntheticImage {
  std::int64_t image_id = 0;
  std::int64_t date_taken = 0;  ///< days since epoch
  std::vector<std::string> objects;
};

/// Collection of synthetic images (the "image storage" of Fig. 2).
class ImageStore {
 public:
  void AddImage(SyntheticImage image) {
    images_.push_back(std::move(image));
  }

  std::size_t size() const { return images_.size(); }
  const std::vector<SyntheticImage>& images() const { return images_; }
  const SyntheticImage& image(std::size_t i) const { return images_[i]; }

  /// Cheap metadata view {image_id:int64, date_taken:date} — queryable
  /// WITHOUT running the detector.
  TablePtr MetadataTable() const;

 private:
  std::vector<SyntheticImage> images_;
};

}  // namespace cre

#endif  // CRE_VISION_IMAGE_STORE_H_
