#include "vision/object_detector.h"

#include "core/hash.h"

namespace cre {

Schema ObjectDetector::DetectionSchema() {
  return Schema({{"image_id", DataType::kInt64, 0},
                 {"date_taken", DataType::kDate, 0},
                 {"object_label", DataType::kString, 0},
                 {"confidence", DataType::kFloat64, 0},
                 {"objects_in_image", DataType::kInt64, 0}});
}

void ObjectDetector::SimulateInferenceCompute() const {
  // Deterministic arithmetic spin calibrated to ~cost_per_image_us on a
  // modern core (~1e3 mixes per microsecond). The work is real compute,
  // not sleep, so it parallelizes and contends like actual inference.
  const std::size_t iters =
      static_cast<std::size_t>(options_.cost_per_image_us * 1000.0);
  volatile std::uint64_t sink = options_.seed;
  std::uint64_t acc = options_.seed;
  for (std::size_t i = 0; i < iters; ++i) {
    acc = MixHash(acc + i);
  }
  sink = acc;
  (void)sink;
}

void ObjectDetector::DetectInto(const SyntheticImage& image,
                                Table* out) const {
  SimulateInferenceCompute();
  images_processed_.fetch_add(1, std::memory_order_relaxed);
  const auto count = static_cast<std::int64_t>(image.objects.size());
  for (const auto& label : image.objects) {
    // Deterministic pseudo-confidence in [0.7, 1.0).
    const std::uint64_t h =
        HashCombine(static_cast<std::uint64_t>(image.image_id),
                    HashString(label));
    const double conf = 0.7 + 0.3 * (static_cast<double>(h % 10000) / 10000.0);
    out->column(0).AppendInt64(image.image_id);
    out->column(1).AppendInt64(image.date_taken);
    out->column(2).AppendString(label);
    out->column(3).AppendFloat64(conf);
    out->column(4).AppendInt64(count);
  }
}

TablePtr ObjectDetector::DetectAll(
    const ImageStore& store, const std::vector<std::uint32_t>* subset) const {
  auto out = Table::Make(DetectionSchema());
  if (subset == nullptr) {
    for (const auto& img : store.images()) DetectInto(img, out.get());
  } else {
    for (const std::uint32_t i : *subset) {
      DetectInto(store.image(i), out.get());
    }
  }
  return out;
}

}  // namespace cre
