#ifndef CRE_SQL_PARSER_H_
#define CRE_SQL_PARSER_H_

#include <string>

#include "core/result.h"
#include "plan/plan_node.h"

namespace cre::sql {

/// Parses one CRE-QL statement into a logical plan. The dialect is a
/// small SQL subset extended with the paper's semantic operators:
///
///   SELECT * | item [AS name], ...         (items: columns, arithmetic,
///                                           COUNT(*), SUM/AVG/MIN/MAX(col))
///   FROM table | DETECT store              (DETECT = object-detection scan)
///   [ JOIN table ON a = b ]*
///   [ SEMANTIC JOIN table ON a ~ b USING model
///       [THRESHOLD t] [TOP k] ]*
///   [ WHERE conjunction ]                  (terms: comparisons, CONTAINS,
///                                           col SIMILAR TO 'q' USING model
///                                           [THRESHOLD t])
///   [ GROUP BY col, ... ]
///   [ SEMANTIC GROUP BY col USING model [THRESHOLD t] ]
///   [ ORDER BY col [ASC|DESC] ]
///   [ LIMIT n ]
///
/// Example (the paper's Fig. 2 query):
///
///   SELECT name, price, image_id
///   FROM products
///   SEMANTIC JOIN kb_category ON type_label ~ subject
///       USING shop THRESHOLD 0.8
///   SEMANTIC JOIN DETECT shop_images ON type_label ~ object_label
///       USING shop THRESHOLD 0.8
///   WHERE price > 20 AND object = 'clothes'
///     AND date_taken > DATE 19300 AND objects_in_image > 2
Result<PlanPtr> ParseSql(const std::string& statement);

}  // namespace cre::sql

#endif  // CRE_SQL_PARSER_H_
