#include "sql/lexer.h"

#include <cctype>

namespace cre::sql {

bool Token::IsKeyword(const char* kw) const {
  if (kind != TokenKind::kIdent) return false;
  const std::size_t n = text.size();
  std::size_t i = 0;
  for (; i < n && kw[i] != '\0'; ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(kw[i]))) {
      return false;
    }
  }
  return i == n && kw[i] == '\0';
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  auto error = [&](const std::string& msg, std::size_t pos) {
    return Status::InvalidArgument("SQL lex error at offset " +
                                   std::to_string(pos) + ": " + msg);
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      t.kind = TokenKind::kIdent;
      t.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::size_t j = i;
      bool has_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (!has_dot && input[j] == '.'))) {
        has_dot |= (input[j] == '.');
        ++j;
      }
      t.kind = TokenKind::kNumber;
      t.text = input.substr(i, j - i);
      t.number = std::stod(t.text);
      t.is_integer = !has_dot;
      i = j;
    } else if (c == '\'') {
      std::size_t j = i + 1;
      std::string value;
      for (;;) {
        if (j >= n) return error("unterminated string literal", i);
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            j += 2;
            continue;
          }
          ++j;
          break;
        }
        value.push_back(input[j]);
        ++j;
      }
      t.kind = TokenKind::kString;
      t.text = std::move(value);
      i = j;
    } else {
      // Multi-character symbols first.
      auto starts = [&](const char* s) {
        const std::size_t len = std::char_traits<char>::length(s);
        return input.compare(i, len, s) == 0;
      };
      t.kind = TokenKind::kSymbol;
      if (starts("<=") || starts(">=") || starts("!=") || starts("<>")) {
        t.text = input.substr(i, 2);
        if (t.text == "<>") t.text = "!=";
        i += 2;
      } else if (c == '(' || c == ')' || c == ',' || c == '*' || c == '=' ||
                 c == '<' || c == '>' || c == '~' || c == '.') {
        t.text = std::string(1, c);
        ++i;
      } else {
        return error(std::string("unexpected character '") + c + "'", i);
      }
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace cre::sql
