#ifndef CRE_SQL_SQL_H_
#define CRE_SQL_SQL_H_

#include <string>

#include "engine/engine.h"
#include "sql/parser.h"

namespace cre::sql {

/// Parses, optimizes, and executes a CRE-QL statement on `engine`.
Result<TablePtr> ExecuteSql(Engine* engine, const std::string& statement);

/// Parses and explains (optimized plan text with annotations).
Result<std::string> ExplainSql(Engine* engine, const std::string& statement);

/// Parses, executes, and renders the measured plan (EXPLAIN ANALYZE):
/// per-node wall time / rows / dop, scheduling waits, index residency
/// transitions, and the query's trace.
Result<std::string> ExplainAnalyzeSql(Engine* engine,
                                      const std::string& statement);

}  // namespace cre::sql

#endif  // CRE_SQL_SQL_H_
