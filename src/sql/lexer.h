#ifndef CRE_SQL_LEXER_H_
#define CRE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "core/result.h"

namespace cre::sql {

enum class TokenKind {
  kIdent,    ///< bare identifier (keywords are classified by the parser)
  kNumber,   ///< integer or decimal literal
  kString,   ///< single-quoted string literal (quotes stripped)
  kSymbol,   ///< operator / punctuation: ( ) , * = != <> < <= > >= ~
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       ///< identifier (original case), symbol, or string
  double number = 0;      ///< kNumber value
  bool is_integer = false;
  std::size_t position = 0;  ///< byte offset, for error messages

  /// Case-insensitive keyword check for identifiers.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes a CRE-QL statement. Fails with InvalidArgument on unknown
/// characters or unterminated strings (offset reported).
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cre::sql

#endif  // CRE_SQL_LEXER_H_
