#include "sql/sql.h"

namespace cre::sql {

Result<TablePtr> ExecuteSql(Engine* engine, const std::string& statement) {
  CRE_ASSIGN_OR_RETURN(PlanPtr plan, ParseSql(statement));
  return engine->Execute(plan);
}

Result<std::string> ExplainSql(Engine* engine, const std::string& statement) {
  CRE_ASSIGN_OR_RETURN(PlanPtr plan, ParseSql(statement));
  return engine->Explain(plan);
}

Result<std::string> ExplainAnalyzeSql(Engine* engine,
                                      const std::string& statement) {
  CRE_ASSIGN_OR_RETURN(PlanPtr plan, ParseSql(statement));
  return engine->ExplainAnalyze(plan);
}

}  // namespace cre::sql
