#include "sql/parser.h"

#include <optional>
#include <vector>

#include "sql/lexer.h"

namespace cre::sql {

namespace {

/// A parsed WHERE-clause conjunct: either a relational expression or a
/// semantic-select specification (which must become a plan node).
struct SemanticPredicate {
  std::string column;
  std::string query;
  std::string model;
  float threshold = 0.9f;
};

struct SelectItem {
  std::string name;
  ExprPtr expr;                       // non-aggregate item
  std::optional<AggSpec> agg;         // aggregate item
  bool is_star = false;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<PlanPtr> ParseStatement();

 private:
  // ---- token helpers ----
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtKeyword(const char* kw, std::size_t ahead = 0) const {
    return Peek(ahead).IsKeyword(kw);
  }
  bool ConsumeKeyword(const char* kw) {
    if (AtKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AtSymbol(const char* s) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == s;
  }
  bool ConsumeSymbol(const char* s) {
    if (AtSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("SQL parse error near offset " +
                                   std::to_string(Peek().position) + ": " +
                                   msg);
  }
  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!ConsumeSymbol(s)) {
      return Error(std::string("expected '") + s + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  // ---- grammar ----
  Result<std::vector<SelectItem>> ParseSelectList();
  Result<PlanPtr> ParseTableRef();
  Result<PlanPtr> ParseFromAndJoins();
  Status ParseWhere(std::vector<ExprPtr>* relational,
                    std::vector<SemanticPredicate>* semantic);
  Result<ExprPtr> ParseOrExpr();
  Result<ExprPtr> ParseAndExpr();
  Result<ExprPtr> ParseNotExpr();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();
  /// Parses one top-level WHERE conjunct, which may be semantic.
  Status ParseConjunct(std::vector<ExprPtr>* relational,
                       std::vector<SemanticPredicate>* semantic);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

Result<std::vector<SelectItem>> Parser::ParseSelectList() {
  std::vector<SelectItem> items;
  for (;;) {
    SelectItem item;
    if (ConsumeSymbol("*")) {
      item.is_star = true;
      items.push_back(std::move(item));
    } else if (AtKeyword("COUNT") || AtKeyword("SUM") || AtKeyword("AVG") ||
               AtKeyword("MIN") || AtKeyword("MAX")) {
      const std::string fn = Advance().text;
      AggSpec agg;
      if (Peek(0).kind == TokenKind::kSymbol && Peek(0).text == "(") {
        Advance();
      } else {
        return Error("expected '(' after aggregate function");
      }
      std::string upper;
      for (char c : fn) upper.push_back(std::toupper(c));
      if (upper == "COUNT") {
        agg.kind = AggKind::kCount;
        if (!ConsumeSymbol("*")) {
          CRE_ASSIGN_OR_RETURN(agg.column, ExpectIdent("column"));
        }
      } else {
        agg.kind = upper == "SUM"   ? AggKind::kSum
                   : upper == "AVG" ? AggKind::kAvg
                   : upper == "MIN" ? AggKind::kMin
                                    : AggKind::kMax;
        CRE_ASSIGN_OR_RETURN(agg.column, ExpectIdent("column"));
      }
      CRE_RETURN_NOT_OK(ExpectSymbol(")"));
      agg.output_name = upper;
      for (char& c : agg.output_name) c = std::tolower(c);
      if (!agg.column.empty()) agg.output_name += "_" + agg.column;
      if (ConsumeKeyword("AS")) {
        CRE_ASSIGN_OR_RETURN(agg.output_name, ExpectIdent("alias"));
      }
      item.agg = std::move(agg);
      items.push_back(std::move(item));
    } else {
      CRE_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
      item.expr = e;
      item.name = e->kind() == ExprKind::kColumnRef ? e->column_name()
                                                    : "expr" +
                                                          std::to_string(
                                                              items.size());
      if (ConsumeKeyword("AS")) {
        CRE_ASSIGN_OR_RETURN(item.name, ExpectIdent("alias"));
      }
      items.push_back(std::move(item));
    }
    if (!ConsumeSymbol(",")) break;
  }
  return items;
}

Result<PlanPtr> Parser::ParseTableRef() {
  if (ConsumeKeyword("DETECT")) {
    CRE_ASSIGN_OR_RETURN(std::string store, ExpectIdent("image store name"));
    return PlanNode::DetectScan(std::move(store));
  }
  CRE_ASSIGN_OR_RETURN(std::string table, ExpectIdent("table name"));
  return PlanNode::Scan(std::move(table));
}

Result<PlanPtr> Parser::ParseFromAndJoins() {
  CRE_RETURN_NOT_OK(ExpectKeyword("FROM"));
  CRE_ASSIGN_OR_RETURN(PlanPtr plan, ParseTableRef());

  for (;;) {
    if (ConsumeKeyword("JOIN")) {
      CRE_ASSIGN_OR_RETURN(PlanPtr right, ParseTableRef());
      CRE_RETURN_NOT_OK(ExpectKeyword("ON"));
      CRE_ASSIGN_OR_RETURN(std::string lk, ExpectIdent("left join key"));
      CRE_RETURN_NOT_OK(ExpectSymbol("="));
      CRE_ASSIGN_OR_RETURN(std::string rk, ExpectIdent("right join key"));
      plan = PlanNode::Join(plan, right, std::move(lk), std::move(rk));
      continue;
    }
    // SEMANTIC JOIN (only when followed by JOIN; SEMANTIC GROUP BY is
    // handled by the statement parser).
    if (AtKeyword("SEMANTIC") && AtKeyword("JOIN", 1)) {
      Advance();  // SEMANTIC
      Advance();  // JOIN
      CRE_ASSIGN_OR_RETURN(PlanPtr right, ParseTableRef());
      CRE_RETURN_NOT_OK(ExpectKeyword("ON"));
      CRE_ASSIGN_OR_RETURN(std::string lk, ExpectIdent("left join key"));
      CRE_RETURN_NOT_OK(ExpectSymbol("~"));
      CRE_ASSIGN_OR_RETURN(std::string rk, ExpectIdent("right join key"));
      CRE_RETURN_NOT_OK(ExpectKeyword("USING"));
      CRE_ASSIGN_OR_RETURN(std::string model, ExpectIdent("model name"));
      float threshold = 0.9f;
      std::size_t top_k = 0;
      for (;;) {
        if (ConsumeKeyword("THRESHOLD")) {
          if (Peek().kind != TokenKind::kNumber) {
            return Error("expected number after THRESHOLD");
          }
          threshold = static_cast<float>(Advance().number);
        } else if (ConsumeKeyword("TOP")) {
          if (Peek().kind != TokenKind::kNumber || !Peek().is_integer) {
            return Error("expected integer after TOP");
          }
          top_k = static_cast<std::size_t>(Advance().number);
        } else {
          break;
        }
      }
      plan = PlanNode::SemanticJoin(plan, right, std::move(lk),
                                    std::move(rk), std::move(model),
                                    threshold);
      plan->top_k = top_k;
      continue;
    }
    break;
  }
  return plan;
}

Result<ExprPtr> Parser::ParsePrimary() {
  if (ConsumeSymbol("(")) {
    CRE_ASSIGN_OR_RETURN(ExprPtr e, ParseOrExpr());
    CRE_RETURN_NOT_OK(ExpectSymbol(")"));
    return e;
  }
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kNumber: {
      Advance();
      if (t.is_integer) {
        return Lit(Value(static_cast<std::int64_t>(t.number)));
      }
      return Lit(Value(t.number));
    }
    case TokenKind::kString:
      Advance();
      return Lit(Value(t.text));
    case TokenKind::kIdent:
      if (t.IsKeyword("TRUE")) {
        Advance();
        return Lit(Value(true));
      }
      if (t.IsKeyword("FALSE")) {
        Advance();
        return Lit(Value(false));
      }
      if (t.IsKeyword("DATE")) {
        Advance();
        if (Peek().kind != TokenKind::kNumber || !Peek().is_integer) {
          return Error("expected integer (days since epoch) after DATE");
        }
        return Lit(Value::Date(static_cast<std::int64_t>(Advance().number)));
      }
      if (t.IsKeyword("CONTAINS")) {
        Advance();
        CRE_RETURN_NOT_OK(ExpectSymbol("("));
        CRE_ASSIGN_OR_RETURN(ExprPtr arg, ParseOrExpr());
        CRE_RETURN_NOT_OK(ExpectSymbol(","));
        if (Peek().kind != TokenKind::kString) {
          return Error("expected string literal in CONTAINS");
        }
        const std::string needle = Advance().text;
        CRE_RETURN_NOT_OK(ExpectSymbol(")"));
        return Expr::StrContains(std::move(arg), needle);
      }
      Advance();
      return Col(t.text);
    default:
      return Error("expected a value, column, or '('");
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  CRE_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
  // '*' and '/' — '/' is not lexed as a symbol (unused); keep '*' only.
  while (AtSymbol("*")) {
    Advance();
    CRE_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
    lhs = Expr::Arith(ArithOp::kMul, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  // '+'/'-' not in the lexer symbol set either; arithmetic is mostly '*'
  // for computed projections. Extend here if needed.
  return ParseMultiplicative();
}

Result<ExprPtr> Parser::ParseComparison() {
  CRE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  CompareOp op;
  if (ConsumeSymbol("=")) {
    op = CompareOp::kEq;
  } else if (ConsumeSymbol("!=")) {
    op = CompareOp::kNe;
  } else if (ConsumeSymbol("<=")) {
    op = CompareOp::kLe;
  } else if (ConsumeSymbol(">=")) {
    op = CompareOp::kGe;
  } else if (ConsumeSymbol("<")) {
    op = CompareOp::kLt;
  } else if (ConsumeSymbol(">")) {
    op = CompareOp::kGt;
  } else {
    return lhs;  // bare boolean expression
  }
  CRE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
  return Expr::Compare(op, std::move(lhs), std::move(rhs));
}

Result<ExprPtr> Parser::ParseNotExpr() {
  if (ConsumeKeyword("NOT")) {
    CRE_ASSIGN_OR_RETURN(ExprPtr e, ParseNotExpr());
    return Not(std::move(e));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseAndExpr() {
  CRE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNotExpr());
  while (AtKeyword("AND")) {
    // Leave "AND <col> SIMILAR TO ..." for the conjunct-level parser: a
    // semantic predicate is a plan node, not an expression.
    if (Peek(1).kind == TokenKind::kIdent && Peek(2).IsKeyword("SIMILAR")) {
      break;
    }
    Advance();  // AND
    CRE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNotExpr());
    lhs = And(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseOrExpr() {
  CRE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
  while (ConsumeKeyword("OR")) {
    CRE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
    lhs = Or(std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Status Parser::ParseConjunct(std::vector<ExprPtr>* relational,
                             std::vector<SemanticPredicate>* semantic) {
  // Semantic form: ident SIMILAR TO 'query' USING model [THRESHOLD t]
  if (Peek().kind == TokenKind::kIdent && AtKeyword("SIMILAR", 1)) {
    SemanticPredicate p;
    p.column = Advance().text;
    Advance();  // SIMILAR
    CRE_RETURN_NOT_OK(ExpectKeyword("TO"));
    if (Peek().kind != TokenKind::kString) {
      return Error("expected string literal after SIMILAR TO");
    }
    p.query = Advance().text;
    CRE_RETURN_NOT_OK(ExpectKeyword("USING"));
    CRE_ASSIGN_OR_RETURN(p.model, ExpectIdent("model name"));
    if (ConsumeKeyword("THRESHOLD")) {
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected number after THRESHOLD");
      }
      p.threshold = static_cast<float>(Advance().number);
    }
    semantic->push_back(std::move(p));
    return Status::OK();
  }
  CRE_ASSIGN_OR_RETURN(ExprPtr e, ParseOrExpr());
  relational->push_back(std::move(e));
  return Status::OK();
}

Status Parser::ParseWhere(std::vector<ExprPtr>* relational,
                          std::vector<SemanticPredicate>* semantic) {
  CRE_RETURN_NOT_OK(ParseConjunct(relational, semantic));
  while (ConsumeKeyword("AND")) {
    CRE_RETURN_NOT_OK(ParseConjunct(relational, semantic));
  }
  return Status::OK();
}

Result<PlanPtr> Parser::ParseStatement() {
  CRE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  CRE_ASSIGN_OR_RETURN(std::vector<SelectItem> select, ParseSelectList());
  CRE_ASSIGN_OR_RETURN(PlanPtr plan, ParseFromAndJoins());

  if (ConsumeKeyword("WHERE")) {
    std::vector<ExprPtr> relational;
    std::vector<SemanticPredicate> semantic;
    CRE_RETURN_NOT_OK(ParseWhere(&relational, &semantic));
    if (ExprPtr combined = CombineConjunction(relational)) {
      plan = PlanNode::Filter(plan, combined);
    }
    for (const auto& p : semantic) {
      plan = PlanNode::SemanticSelect(plan, p.column, p.query, p.model,
                                      p.threshold);
    }
  }

  std::vector<std::string> group_keys;
  bool has_group_by = false;
  if (AtKeyword("GROUP")) {
    Advance();
    CRE_RETURN_NOT_OK(ExpectKeyword("BY"));
    has_group_by = true;
    for (;;) {
      CRE_ASSIGN_OR_RETURN(std::string key, ExpectIdent("group key"));
      group_keys.push_back(std::move(key));
      if (!ConsumeSymbol(",")) break;
    }
  }
  if (AtKeyword("SEMANTIC") && AtKeyword("GROUP", 1)) {
    Advance();  // SEMANTIC
    Advance();  // GROUP
    CRE_RETURN_NOT_OK(ExpectKeyword("BY"));
    CRE_ASSIGN_OR_RETURN(std::string column, ExpectIdent("column"));
    CRE_RETURN_NOT_OK(ExpectKeyword("USING"));
    CRE_ASSIGN_OR_RETURN(std::string model, ExpectIdent("model name"));
    float threshold = 0.9f;
    if (ConsumeKeyword("THRESHOLD")) {
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected number after THRESHOLD");
      }
      threshold = static_cast<float>(Advance().number);
    }
    plan = PlanNode::SemanticGroupBy(plan, std::move(column),
                                     std::move(model), threshold);
  }

  // Aggregation: any aggregate select item (or explicit GROUP BY).
  std::vector<AggSpec> aggs;
  for (const auto& item : select) {
    if (item.agg.has_value()) aggs.push_back(*item.agg);
  }
  if (!aggs.empty() || has_group_by) {
    if (aggs.empty()) {
      return Error("GROUP BY requires at least one aggregate in SELECT");
    }
    plan = PlanNode::Aggregate(plan, group_keys, aggs);
  } else {
    // Plain projection unless SELECT *.
    bool star = false;
    for (const auto& item : select) star |= item.is_star;
    if (!star) {
      std::vector<ProjectionItem> items;
      for (const auto& item : select) {
        items.push_back({item.name, item.expr});
      }
      plan = PlanNode::Project(plan, std::move(items));
    }
  }

  if (AtKeyword("ORDER")) {
    Advance();
    CRE_RETURN_NOT_OK(ExpectKeyword("BY"));
    CRE_ASSIGN_OR_RETURN(std::string key, ExpectIdent("order key"));
    bool ascending = true;
    if (ConsumeKeyword("DESC")) {
      ascending = false;
    } else {
      ConsumeKeyword("ASC");
    }
    plan = PlanNode::Sort(plan, std::move(key), ascending);
  }
  if (ConsumeKeyword("LIMIT")) {
    if (Peek().kind != TokenKind::kNumber || !Peek().is_integer) {
      return Error("expected integer after LIMIT");
    }
    plan = PlanNode::Limit(plan,
                           static_cast<std::size_t>(Advance().number));
  }

  if (Peek().kind != TokenKind::kEnd) {
    return Error("unexpected trailing input '" + Peek().text + "'");
  }
  return plan;
}

}  // namespace

Result<PlanPtr> ParseSql(const std::string& statement) {
  CRE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace cre::sql
