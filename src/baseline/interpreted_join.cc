#include "baseline/interpreted_join.h"

#include <memory>

#include "embed/structured_model.h"

namespace cre {

double InterpretedDot(const float* a, const float* b, std::size_t dim,
                      const std::function<double(double, double)>& mul,
                      const std::function<double(double, double)>& add) {
  // Boxed accumulator: each step allocates, as an interpreter would.
  auto acc = std::make_unique<double>(0.0);
  for (std::size_t d = 0; d < dim; ++d) {
    auto term = std::make_unique<double>(
        mul(static_cast<double>(a[d]), static_cast<double>(b[d])));
    acc = std::make_unique<double>(add(*acc, *term));
  }
  return *acc;
}

namespace {

std::vector<StringRow> ApplyFilter(const std::vector<StringRow>& rows,
                                   std::int64_t attr_cutoff) {
  std::vector<StringRow> out;
  for (const auto& r : rows) {
    if (r.attr < attr_cutoff) out.push_back(r);
  }
  return out;
}

}  // namespace

std::vector<MatchPair> InterpretedSimilarityJoin(
    const std::vector<StringRow>& left, const std::vector<StringRow>& right,
    const EmbeddingModel& model, float threshold, std::int64_t attr_cutoff,
    const InterpretedOptions& options, InterpretedJoinStats* stats) {
  InterpretedJoinStats local_stats;
  InterpretedJoinStats* st = stats ? stats : &local_stats;
  *st = InterpretedJoinStats{};

  const std::vector<StringRow>* lp = &left;
  const std::vector<StringRow>* rp = &right;
  std::vector<StringRow> lf, rf;
  if (options.filter_pushdown) {
    lf = ApplyFilter(left, attr_cutoff);
    rf = ApplyFilter(right, attr_cutoff);
    lp = &lf;
    rp = &rf;
  }
  const auto& l = *lp;
  const auto& r = *rp;
  const std::size_t dim = model.dim();

  // Per-element interpreted ops: the std::function indirection is the
  // point — it models opcode dispatch per arithmetic step.
  const std::function<double(double, double)> mul =
      [](double x, double y) { return x * y; };
  const std::function<double(double, double)> add =
      [](double x, double y) { return x + y; };

  std::vector<float> left_cache, right_cache;
  if (options.cache_embeddings) {
    left_cache.resize(l.size() * dim);
    right_cache.resize(r.size() * dim);
    std::vector<std::string> lw, rw;
    lw.reserve(l.size());
    rw.reserve(r.size());
    for (const auto& row : l) lw.push_back(row.word);
    for (const auto& row : r) rw.push_back(row.word);
    // The prefetch toggle exercises the vocabulary-table/matrix prefetch
    // path when the model supports it.
    const auto* structured =
        dynamic_cast<const SynonymStructuredModel*>(&model);
    if (structured != nullptr) {
      structured->EmbedBatchPrefetch(lw, left_cache.data(), options.prefetch);
      structured->EmbedBatchPrefetch(rw, right_cache.data(),
                                     options.prefetch);
    } else {
      model.EmbedBatch(lw, left_cache.data());
      model.EmbedBatch(rw, right_cache.data());
    }
    st->rows_embedded += l.size() + r.size();
  }

  std::vector<MatchPair> matches;
  std::vector<float> va(dim), vb(dim);
  for (std::size_t i = 0; i < l.size(); ++i) {
    const float* a;
    if (options.cache_embeddings) {
      a = left_cache.data() + i * dim;
    } else {
      // Eager per-iteration embedding: the library-call-in-a-loop pattern.
      model.Embed(l[i].word, va.data());
      ++st->rows_embedded;
      a = va.data();
    }
    for (std::size_t j = 0; j < r.size(); ++j) {
      const float* b;
      if (options.cache_embeddings) {
        b = right_cache.data() + j * dim;
      } else {
        model.Embed(r[j].word, vb.data());
        ++st->rows_embedded;
        b = vb.data();
      }
      ++st->pairs_evaluated;
      const double sim = InterpretedDot(a, b, dim, mul, add);
      if (sim >= threshold) {
        matches.push_back({static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j),
                           static_cast<float>(sim)});
      }
    }
  }

  if (!options.filter_pushdown) {
    // Late filter: discard matches whose rows fail the predicate — all the
    // join work on non-qualifying rows was wasted.
    std::vector<MatchPair> kept;
    for (const auto& m : matches) {
      if (left[m.left].attr < attr_cutoff && right[m.right].attr < attr_cutoff) {
        kept.push_back(m);
      }
    }
    matches.swap(kept);
  }
  st->matches = matches.size();
  return matches;
}

}  // namespace cre
