#ifndef CRE_BASELINE_INTERPRETED_JOIN_H_
#define CRE_BASELINE_INTERPRETED_JOIN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "embed/embedding_model.h"
#include "vecsim/brute_force.h"

namespace cre {

/// One row of the Figure 4 workload: a string join key plus a numeric
/// attribute used by the 1%-selectivity filter.
struct StringRow {
  std::string word;
  std::int64_t attr = 0;
};

/// Emulation knobs for the "data analyst takes the first tool at their
/// disposal" baseline (paper Sec. V): tuple-at-a-time evaluation with
/// per-element indirect calls and per-pair temporary allocations — the
/// overhead class of an interpreted (Python-like) pipeline. Each flag is
/// one additive optimization rung of Figure 4.
struct InterpretedOptions {
  /// Apply the attribute filter BEFORE the join (the classic pushdown
  /// rule). When false the join runs on the full inputs and the filter is
  /// applied to the join result — the analyst's mistake in Sec. II.
  bool filter_pushdown = false;
  /// Embed each distinct row once up front instead of re-embedding inside
  /// the pair loop (the "optimize data access" rung).
  bool cache_embeddings = false;
  /// With cache_embeddings: use the software-prefetching batch lookup.
  bool prefetch = false;
};

struct InterpretedJoinStats {
  std::size_t pairs_evaluated = 0;
  std::size_t rows_embedded = 0;
  std::size_t matches = 0;
};

/// Interpreted-style semantic similarity join with an optional attribute
/// filter (attr < attr_cutoff on both sides). Results are identical to the
/// compiled path on the same filtered inputs; only the execution strategy
/// (and hence cost) differs.
std::vector<MatchPair> InterpretedSimilarityJoin(
    const std::vector<StringRow>& left, const std::vector<StringRow>& right,
    const EmbeddingModel& model, float threshold, std::int64_t attr_cutoff,
    const InterpretedOptions& options, InterpretedJoinStats* stats = nullptr);

/// The interpreted inner product: per-element multiply/add through
/// std::function indirection, accumulating in boxed doubles. Exposed for
/// the microbench that isolates interpretation overhead.
double InterpretedDot(const float* a, const float* b, std::size_t dim,
                      const std::function<double(double, double)>& mul,
                      const std::function<double(double, double)>& add);

}  // namespace cre

#endif  // CRE_BASELINE_INTERPRETED_JOIN_H_
