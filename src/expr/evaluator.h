#ifndef CRE_EXPR_EVALUATOR_H_
#define CRE_EXPR_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace cre {

/// Vectorized expression evaluation: computes `expr` over every row of
/// `table`, producing one output column. Numeric comparisons promote to
/// double; string comparisons are lexicographic.
Result<Column> EvaluateExpr(const Expr& expr, const Table& table);

/// Evaluates a boolean predicate and returns the indices of matching rows
/// (a selection vector).
Result<std::vector<std::uint32_t>> FilterIndices(const Table& table,
                                                 const Expr& predicate);

/// Convenience: materializes the rows of `table` matching `predicate`.
Result<TablePtr> FilterTable(const TablePtr& table, const Expr& predicate);

/// Estimated fraction of rows satisfying `predicate`, computed on a sample
/// of at most `sample_size` evenly spaced rows. Used by the optimizer's
/// cardinality estimator.
Result<double> EstimateSelectivity(const Table& table, const Expr& predicate,
                                   std::size_t sample_size = 1024);

}  // namespace cre

#endif  // CRE_EXPR_EVALUATOR_H_
