#include "expr/evaluator.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace cre {

namespace {

/// Evaluation result: either a full column or a broadcast scalar.
struct EvalResult {
  Column column{DataType::kInt64};
  bool is_scalar = false;
  Value scalar;

  DataType type() const { return is_scalar ? scalar.type() : column.type(); }
};

Result<EvalResult> Eval(const Expr& expr, const Table& table);

bool CompareNumeric(CompareOp op, double a, double b) {
  switch (op) {
    case CompareOp::kEq:
      return a == b;
    case CompareOp::kNe:
      return a != b;
    case CompareOp::kLt:
      return a < b;
    case CompareOp::kLe:
      return a <= b;
    case CompareOp::kGt:
      return a > b;
    case CompareOp::kGe:
      return a >= b;
  }
  return false;
}

bool CompareString(CompareOp op, const std::string& a, const std::string& b) {
  const int c = a.compare(b);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

double ApplyArith(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd:
      return a + b;
    case ArithOp::kSub:
      return a - b;
    case ArithOp::kMul:
      return a * b;
    case ArithOp::kDiv:
      return b == 0 ? 0 : a / b;
  }
  return 0;
}

/// Reads element i of a numeric eval result as double.
double NumericAt(const EvalResult& r, std::size_t i) {
  if (r.is_scalar) return r.scalar.AsNumeric();
  switch (r.column.type()) {
    case DataType::kInt64:
    case DataType::kDate:
      return static_cast<double>(r.column.i64()[i]);
    case DataType::kFloat64:
      return r.column.f64()[i];
    case DataType::kBool:
      return r.column.bools()[i] ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

const std::string& StringAt(const EvalResult& r, std::size_t i) {
  if (r.is_scalar) return r.scalar.AsString();
  return r.column.strings()[i];
}

bool BoolAt(const EvalResult& r, std::size_t i) {
  if (r.is_scalar) return r.scalar.AsBool();
  return r.column.bools()[i] != 0;
}

Result<EvalResult> EvalCompare(const Expr& expr, const Table& table) {
  CRE_ASSIGN_OR_RETURN(EvalResult lhs, Eval(*expr.children()[0], table));
  CRE_ASSIGN_OR_RETURN(EvalResult rhs, Eval(*expr.children()[1], table));
  const std::size_t n = table.num_rows();
  EvalResult out;
  out.column = Column(DataType::kBool);
  out.column.Reserve(n);

  const bool lhs_str = lhs.type() == DataType::kString;
  const bool rhs_str = rhs.type() == DataType::kString;
  if (lhs_str != rhs_str) {
    return Status::TypeError("cannot compare string with non-string: " +
                             expr.ToString());
  }
  const CompareOp op = expr.compare_op();
  if (lhs_str) {
    // Fast path: column vs scalar string equality.
    for (std::size_t i = 0; i < n; ++i) {
      out.column.AppendBool(CompareString(op, StringAt(lhs, i),
                                          StringAt(rhs, i)));
    }
  } else {
    // Fast path: int64 column vs int64 scalar (the common pushdown shape).
    if (!lhs.is_scalar && rhs.is_scalar &&
        (lhs.column.type() == DataType::kInt64 ||
         lhs.column.type() == DataType::kDate) &&
        (rhs.scalar.is_int64() || rhs.scalar.is_date())) {
      const auto& data = lhs.column.i64();
      const std::int64_t rv = rhs.scalar.AsInt64();
      for (std::size_t i = 0; i < n; ++i) {
        out.column.AppendBool(CompareNumeric(op,
                                             static_cast<double>(data[i]),
                                             static_cast<double>(rv)));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out.column.AppendBool(
            CompareNumeric(op, NumericAt(lhs, i), NumericAt(rhs, i)));
      }
    }
  }
  return out;
}

Result<EvalResult> Eval(const Expr& expr, const Table& table) {
  const std::size_t n = table.num_rows();
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      CRE_ASSIGN_OR_RETURN(const Column* col,
                           table.ColumnByName(expr.column_name()));
      EvalResult r;
      r.column = *col;  // copy; acceptable at batch granularity
      return r;
    }
    case ExprKind::kLiteral: {
      EvalResult r;
      r.is_scalar = true;
      r.scalar = expr.literal();
      return r;
    }
    case ExprKind::kCompare:
      return EvalCompare(expr, table);
    case ExprKind::kArith: {
      CRE_ASSIGN_OR_RETURN(EvalResult lhs, Eval(*expr.children()[0], table));
      CRE_ASSIGN_OR_RETURN(EvalResult rhs, Eval(*expr.children()[1], table));
      EvalResult out;
      out.column = Column(DataType::kFloat64);
      out.column.Reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.column.AppendFloat64(
            ApplyArith(expr.arith_op(), NumericAt(lhs, i), NumericAt(rhs, i)));
      }
      return out;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      CRE_ASSIGN_OR_RETURN(EvalResult lhs, Eval(*expr.children()[0], table));
      CRE_ASSIGN_OR_RETURN(EvalResult rhs, Eval(*expr.children()[1], table));
      if (lhs.type() != DataType::kBool || rhs.type() != DataType::kBool) {
        return Status::TypeError("AND/OR requires boolean operands: " +
                                 expr.ToString());
      }
      EvalResult out;
      out.column = Column(DataType::kBool);
      out.column.Reserve(n);
      const bool is_and = expr.kind() == ExprKind::kAnd;
      for (std::size_t i = 0; i < n; ++i) {
        const bool a = BoolAt(lhs, i);
        const bool b = BoolAt(rhs, i);
        out.column.AppendBool(is_and ? (a && b) : (a || b));
      }
      return out;
    }
    case ExprKind::kNot: {
      CRE_ASSIGN_OR_RETURN(EvalResult in, Eval(*expr.children()[0], table));
      if (in.type() != DataType::kBool) {
        return Status::TypeError("NOT requires boolean operand");
      }
      EvalResult out;
      out.column = Column(DataType::kBool);
      out.column.Reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.column.AppendBool(!BoolAt(in, i));
      }
      return out;
    }
    case ExprKind::kStrContains: {
      CRE_ASSIGN_OR_RETURN(EvalResult in, Eval(*expr.children()[0], table));
      if (in.type() != DataType::kString) {
        return Status::TypeError("contains() requires a string operand");
      }
      EvalResult out;
      out.column = Column(DataType::kBool);
      out.column.Reserve(n);
      const std::string& needle = expr.str_needle();
      for (std::size_t i = 0; i < n; ++i) {
        out.column.AppendBool(StringAt(in, i).find(needle) !=
                              std::string::npos);
      }
      return out;
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace

Result<Column> EvaluateExpr(const Expr& expr, const Table& table) {
  CRE_ASSIGN_OR_RETURN(EvalResult r, Eval(expr, table));
  if (r.is_scalar) {
    // Broadcast the scalar to a full column.
    Column col(r.scalar.type());
    const std::size_t n = table.num_rows();
    col.Reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      CRE_RETURN_NOT_OK(col.AppendValue(r.scalar));
    }
    return col;
  }
  return std::move(r.column);
}

Result<std::vector<std::uint32_t>> FilterIndices(const Table& table,
                                                 const Expr& predicate) {
  CRE_ASSIGN_OR_RETURN(Column mask, EvaluateExpr(predicate, table));
  if (mask.type() != DataType::kBool) {
    return Status::TypeError("filter predicate must be boolean: " +
                             predicate.ToString());
  }
  const auto& bits = mask.bools();
  std::vector<std::uint32_t> out;
  out.reserve(bits.size() / 4);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

Result<TablePtr> FilterTable(const TablePtr& table, const Expr& predicate) {
  CRE_ASSIGN_OR_RETURN(std::vector<std::uint32_t> idx,
                       FilterIndices(*table, predicate));
  return table->Take(idx);
}

Result<double> EstimateSelectivity(const Table& table, const Expr& predicate,
                                   std::size_t sample_size) {
  const std::size_t n = table.num_rows();
  if (n == 0) return 1.0;
  if (n <= sample_size) {
    CRE_ASSIGN_OR_RETURN(auto idx, FilterIndices(table, predicate));
    return static_cast<double>(idx.size()) / static_cast<double>(n);
  }
  // Evenly spaced sample rows.
  std::vector<std::uint32_t> sample_rows;
  sample_rows.reserve(sample_size);
  const double step = static_cast<double>(n) / sample_size;
  for (std::size_t i = 0; i < sample_size; ++i) {
    sample_rows.push_back(static_cast<std::uint32_t>(i * step));
  }
  TablePtr sample = table.Take(sample_rows);
  CRE_ASSIGN_OR_RETURN(auto idx, FilterIndices(*sample, predicate));
  return static_cast<double>(idx.size()) / static_cast<double>(sample_size);
}

}  // namespace cre
