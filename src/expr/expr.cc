#include "expr/expr.h"

#include <sstream>

namespace cre {

ExprPtr Expr::Column(std::string name) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->column_name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value v) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kAnd;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeOr(ExprPtr lhs, ExprPtr rhs) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kOr;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeNot(ExprPtr child) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::StrContains(ExprPtr haystack, std::string needle) {
  std::shared_ptr<Expr> e(new Expr());
  e->kind_ = ExprKind::kStrContains;
  e->column_name_ = std::move(needle);
  e->children_ = {std::move(haystack)};
  return e;
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->insert(column_name_);
    return;
  }
  for (const auto& c : children_) c->CollectColumns(out);
}

bool Expr::OnlyReferences(const std::set<std::string>& available) const {
  std::set<std::string> used;
  CollectColumns(&used);
  for (const auto& name : used) {
    if (!available.count(name)) return false;
  }
  return true;
}

namespace {
const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}
const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case ExprKind::kColumnRef:
      os << column_name_;
      break;
    case ExprKind::kLiteral:
      os << literal_.ToString();
      break;
    case ExprKind::kCompare:
      os << "(" << children_[0]->ToString() << " "
         << CompareOpName(compare_op_) << " " << children_[1]->ToString()
         << ")";
      break;
    case ExprKind::kArith:
      os << "(" << children_[0]->ToString() << " " << ArithOpName(arith_op_)
         << " " << children_[1]->ToString() << ")";
      break;
    case ExprKind::kAnd:
      os << "(" << children_[0]->ToString() << " AND "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kOr:
      os << "(" << children_[0]->ToString() << " OR "
         << children_[1]->ToString() << ")";
      break;
    case ExprKind::kNot:
      os << "NOT(" << children_[0]->ToString() << ")";
      break;
    case ExprKind::kStrContains:
      os << "contains(" << children_[0]->ToString() << ", '" << column_name_
         << "')";
      break;
  }
  return os.str();
}

std::vector<ExprPtr> SplitConjunction(const ExprPtr& expr) {
  std::vector<ExprPtr> terms;
  if (!expr) return terms;
  if (expr->kind() == ExprKind::kAnd) {
    for (const auto& child : expr->children()) {
      auto sub = SplitConjunction(child);
      terms.insert(terms.end(), sub.begin(), sub.end());
    }
  } else {
    terms.push_back(expr);
  }
  return terms;
}

ExprPtr CombineConjunction(const std::vector<ExprPtr>& terms) {
  ExprPtr result;
  for (const auto& t : terms) {
    result = result ? And(result, t) : t;
  }
  return result;
}

}  // namespace cre
