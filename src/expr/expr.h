#ifndef CRE_EXPR_EXPR_H_
#define CRE_EXPR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "types/value.h"

namespace cre {

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kCompare,
  kArith,
  kAnd,
  kOr,
  kNot,
  kStrContains,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable scalar expression tree. Built via the factory helpers below
/// (Col/Lit/Gt/...), evaluated vectorized by EvaluateExpr.
class Expr {
 public:
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeNot(ExprPtr child);
  static ExprPtr StrContains(ExprPtr haystack, std::string needle);

  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return column_name_; }
  const Value& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::string& str_needle() const { return column_name_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Adds every referenced column name to `out`.
  void CollectColumns(std::set<std::string>* out) const;

  /// True when every referenced column is present in `available`.
  bool OnlyReferences(const std::set<std::string>& available) const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string column_name_;  // kColumnRef; also needle for kStrContains
  Value literal_;
  CompareOp compare_op_ = CompareOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  std::vector<ExprPtr> children_;
};

// ---- terse builders used throughout examples, tests, and benches ----

inline ExprPtr Col(std::string name) { return Expr::Column(std::move(name)); }
inline ExprPtr Lit(Value v) { return Expr::Literal(std::move(v)); }

inline ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kNe, std::move(a), std::move(b));
}
inline ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr Le(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kLe, std::move(a), std::move(b));
}
inline ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return Expr::Compare(CompareOp::kGe, std::move(a), std::move(b));
}
inline ExprPtr And(ExprPtr a, ExprPtr b) {
  return Expr::MakeAnd(std::move(a), std::move(b));
}
inline ExprPtr Or(ExprPtr a, ExprPtr b) {
  return Expr::MakeOr(std::move(a), std::move(b));
}
inline ExprPtr Not(ExprPtr a) { return Expr::MakeNot(std::move(a)); }

/// Splits a conjunction into its AND-ed terms (flattens nested ANDs).
std::vector<ExprPtr> SplitConjunction(const ExprPtr& expr);

/// AND-combines terms (returns nullptr for an empty list).
ExprPtr CombineConjunction(const std::vector<ExprPtr>& terms);

}  // namespace cre

#endif  // CRE_EXPR_EXPR_H_
