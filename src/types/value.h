#ifndef CRE_TYPES_VALUE_H_
#define CRE_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "types/data_type.h"

namespace cre {

/// A single dynamically-typed cell. Used at API boundaries (row append,
/// literals, result inspection); the execution engine works on typed
/// columns and never boxes per-row values on hot paths.
class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  Value(std::int64_t v) : rep_(v) {}                   // NOLINT
  Value(int v) : rep_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : rep_(v) {}                          // NOLINT
  Value(bool v) : rep_(v) {}                            // NOLINT
  Value(std::string v) : rep_(std::move(v)) {}          // NOLINT
  Value(const char* v) : rep_(std::string(v)) {}        // NOLINT
  Value(std::vector<float> v) : rep_(std::move(v)) {}   // NOLINT

  /// Tags an int64 payload as a date (days since epoch).
  static Value Date(std::int64_t days) {
    Value v(days);
    v.is_date_ = true;
    return v;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int64() const {
    return std::holds_alternative<std::int64_t>(rep_) && !is_date_;
  }
  bool is_date() const { return is_date_; }
  bool is_float64() const { return std::holds_alternative<double>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }
  bool is_vector() const {
    return std::holds_alternative<std::vector<float>>(rep_);
  }

  DataType type() const;

  std::int64_t AsInt64() const { return std::get<std::int64_t>(rep_); }
  double AsFloat64() const { return std::get<double>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }
  const std::vector<float>& AsVector() const {
    return std::get<std::vector<float>>(rep_);
  }

  /// Numeric view of int64/float64/bool/date payloads (for comparisons).
  double AsNumeric() const;

  std::string ToString() const;

  bool operator==(const Value& other) const { return rep_ == other.rep_; }

 private:
  std::variant<std::monostate, std::int64_t, double, bool, std::string,
               std::vector<float>>
      rep_;
  bool is_date_ = false;
};

}  // namespace cre

#endif  // CRE_TYPES_VALUE_H_
