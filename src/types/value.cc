#include "types/value.h"

#include <sstream>

namespace cre {

DataType Value::type() const {
  if (is_date_) return DataType::kDate;
  if (std::holds_alternative<std::int64_t>(rep_)) return DataType::kInt64;
  if (std::holds_alternative<double>(rep_)) return DataType::kFloat64;
  if (std::holds_alternative<bool>(rep_)) return DataType::kBool;
  if (std::holds_alternative<std::string>(rep_)) return DataType::kString;
  if (std::holds_alternative<std::vector<float>>(rep_)) {
    return DataType::kFloatVector;
  }
  return DataType::kInt64;  // null defaults
}

double Value::AsNumeric() const {
  if (std::holds_alternative<std::int64_t>(rep_)) {
    return static_cast<double>(std::get<std::int64_t>(rep_));
  }
  if (std::holds_alternative<double>(rep_)) return std::get<double>(rep_);
  if (std::holds_alternative<bool>(rep_)) {
    return std::get<bool>(rep_) ? 1.0 : 0.0;
  }
  return 0.0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  if (is_null()) {
    os << "null";
  } else if (std::holds_alternative<std::int64_t>(rep_)) {
    os << std::get<std::int64_t>(rep_);
    if (is_date_) os << "d";
  } else if (std::holds_alternative<double>(rep_)) {
    os << std::get<double>(rep_);
  } else if (std::holds_alternative<bool>(rep_)) {
    os << (std::get<bool>(rep_) ? "true" : "false");
  } else if (std::holds_alternative<std::string>(rep_)) {
    os << std::get<std::string>(rep_);
  } else {
    const auto& v = std::get<std::vector<float>>(rep_);
    os << "vec[" << v.size() << "]";
  }
  return os.str();
}

}  // namespace cre
