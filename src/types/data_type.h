#ifndef CRE_TYPES_DATA_TYPE_H_
#define CRE_TYPES_DATA_TYPE_H_

namespace cre {

/// Physical column types supported by the engine.
///   kDate is stored as int64 days-since-epoch.
///   kFloatVector is a fixed-dimension dense embedding column.
enum class DataType {
  kInt64 = 0,
  kFloat64,
  kBool,
  kString,
  kDate,
  kFloatVector,
};

inline const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kBool:
      return "bool";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
    case DataType::kFloatVector:
      return "float_vector";
  }
  return "unknown";
}

/// True for types whose comparison semantics are numeric.
inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kFloat64 ||
         t == DataType::kDate || t == DataType::kBool;
}

}  // namespace cre

#endif  // CRE_TYPES_DATA_TYPE_H_
