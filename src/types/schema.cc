#include "types/schema.h"

#include <sstream>

namespace cre {

int Schema::FieldIndex(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<std::size_t> Schema::RequireField(const std::string& name) const {
  const int idx = FieldIndex(name);
  if (idx < 0) {
    return Status::NotFound("no field named '" + name + "' in schema [" +
                            ToString() + "]");
  }
  return static_cast<std::size_t>(idx);
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << DataTypeName(fields_[i].type);
    if (fields_[i].type == DataType::kFloatVector) {
      os << "(" << fields_[i].vector_dim << ")";
    }
  }
  return os.str();
}

}  // namespace cre
