#ifndef CRE_TYPES_SCHEMA_H_
#define CRE_TYPES_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/result.h"
#include "core/status.h"
#include "types/data_type.h"

namespace cre {

/// A named, typed column slot. For kFloatVector fields `vector_dim` gives
/// the embedding dimensionality.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  std::size_t vector_dim = 0;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           vector_dim == other.vector_dim;
  }
};

/// Ordered collection of fields describing a table or operator output.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  std::size_t num_fields() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 when absent.
  int FieldIndex(const std::string& name) const;

  /// Like FieldIndex but returns an error Status when absent.
  Result<std::size_t> RequireField(const std::string& name) const;

  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// "name:type, name:type, ..." for EXPLAIN output and errors.
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace cre

#endif  // CRE_TYPES_SCHEMA_H_
